#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "baselines/pid.hpp"

namespace dimmer::baselines {
namespace {

core::GlobalSnapshot snapshot_with_worst(double worst_rel, int n = 18) {
  core::GlobalSnapshot snap(n);
  snap.current_round = 2;
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    auto& e = snap.entries[i];
    e.reliability = i == 3 ? worst_rel : 1.0;
    e.radio_on_ms = 8.0;
    e.round = 2;
    e.ever_heard = true;
  }
  return snap;
}

TEST(PidController, DriftsDownWhenFullyReliable) {
  PidController pid;
  auto snap = snapshot_with_worst(1.0);
  int n = 3, min_seen = 3;
  for (int r = 0; r < 200; ++r) {
    n = pid.decide(snap, true, n);
    min_seen = std::min(min_seen, n);
    EXPECT_GE(n, 1);
  }
  EXPECT_LE(min_seen, 2);  // energy pressure pushes below the start point
}

TEST(PidController, JumpsOnLosses) {
  PidController pid;
  auto clean = snapshot_with_worst(1.0);
  int n = 3;
  for (int r = 0; r < 10; ++r) n = pid.decide(clean, true, n);
  int calm_n = n;
  auto lossy = snapshot_with_worst(0.6);
  n = pid.decide(lossy, false, n);
  EXPECT_GT(n, calm_n);
}

TEST(PidController, SaturatesUnderPersistentLosses) {
  PidController pid;
  auto lossy = snapshot_with_worst(0.5);
  int n = 3;
  for (int r = 0; r < 15; ++r) n = pid.decide(lossy, false, n);
  EXPECT_EQ(n, 8);
}

TEST(PidController, RecoversSlowlyAfterInterference) {
  PidController pid;
  auto lossy = snapshot_with_worst(0.5);
  int n = 3;
  for (int r = 0; r < 20; ++r) n = pid.decide(lossy, false, n);
  ASSERT_EQ(n, 8);
  // After the interference stops, the integral drains slowly: the
  // controller must NOT drop straight back in one or two rounds.
  auto clean = snapshot_with_worst(1.0);
  n = pid.decide(clean, true, n);
  int after_one = n;
  EXPECT_GE(after_one, 5);
  int rounds_to_three = 0;
  while (n > 3 && rounds_to_three < 500) {
    n = pid.decide(clean, true, n);
    ++rounds_to_three;
  }
  EXPECT_GT(rounds_to_three, 10);  // "converges slowly back" (SV-C)
}

TEST(PidController, OutputAlwaysInRange) {
  PidController pid;
  util::Pcg32 rng(1);
  int n = 3;
  for (int r = 0; r < 300; ++r) {
    auto snap = snapshot_with_worst(rng.uniform());
    n = pid.decide(snap, rng.bernoulli(0.5), n);
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 8);
  }
}

TEST(PidController, MissingFeedbackIsPessimistic) {
  PidController pid;
  core::GlobalSnapshot snap = snapshot_with_worst(1.0);
  snap.entries[7].ever_heard = false;  // silent node reads as 0% reliable
  int n = pid.decide(snap, false, 3);
  EXPECT_GE(n, 5);  // strong proportional kick
}

TEST(PidController, UnaccountedNodesAreIgnored) {
  PidController pid;
  core::GlobalSnapshot snap = snapshot_with_worst(1.0);
  snap.entries[7].ever_heard = false;
  snap.entries[7].accounted = false;  // excluded from evaluation
  int n = 3;
  for (int r = 0; r < 5; ++r) n = pid.decide(snap, true, n);
  EXPECT_LE(n, 3);  // no kick: the silent node does not count
}

TEST(PidController, ResetRestoresStartingPoint) {
  PidController pid;
  auto lossy = snapshot_with_worst(0.4);
  int n = 3;
  for (int r = 0; r < 20; ++r) n = pid.decide(lossy, false, n);
  pid.reset();
  auto clean = snapshot_with_worst(1.0);
  EXPECT_LE(pid.decide(clean, true, 8), 3);
}

TEST(PidController, AntiWindupBoundsIntegral) {
  PidController::Config cfg;
  PidController pid(cfg);
  auto lossy = snapshot_with_worst(0.0);
  for (int r = 0; r < 1000; ++r) pid.decide(lossy, false, 8);
  EXPECT_LE(pid.integral(), cfg.integral_max);
  EXPECT_GE(pid.integral(), 0.0);
}

TEST(PidController, RejectsBadConfig) {
  PidController::Config cfg;
  cfg.n_max = 0;
  EXPECT_THROW(PidController{cfg}, util::RequireError);
  cfg = PidController::Config{};
  cfg.integral_max = -1.0;
  EXPECT_THROW(PidController{cfg}, util::RequireError);
}

}  // namespace
}  // namespace dimmer::baselines
