#include <gtest/gtest.h>

#include <memory>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "baselines/crystal.hpp"
#include "phy/topology.hpp"

namespace dimmer::baselines {
namespace {

TEST(Crystal, CalmEpochDeliversOfferedPackets) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  CrystalNetwork net(topo, field, CrystalNetwork::Config{}, 0, 1);
  net.offer_packet(5);
  net.offer_packet(12);
  auto stats = net.run_epoch();
  EXPECT_EQ(stats.delivered, 2);
  EXPECT_EQ(stats.pending_after, 0);
  EXPECT_EQ(net.pending_packets(), 0);
}

TEST(Crystal, EmptyEpochTerminatesQuickly) {
  phy::Topology topo = phy::make_dcube48_topology();
  CrystalNetwork::Config cfg;
  phy::InterferenceField field;
  CrystalNetwork net(topo, field, cfg, 0, 2);
  auto stats = net.run_epoch();
  EXPECT_EQ(stats.delivered, 0);
  EXPECT_LE(stats.pairs_executed, cfg.max_silent_pairs);
  EXPECT_FALSE(stats.noise_detected);
}

TEST(Crystal, SilentEpochsAreCheap) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  CrystalNetwork net(topo, field, CrystalNetwork::Config{}, 0, 3);
  auto idle = net.run_epoch();
  net.offer_packet(5);
  net.offer_packet(9);
  net.offer_packet(13);
  auto busy = net.run_epoch();
  EXPECT_LT(idle.radio_on_ms * idle.pairs_executed,
            busy.radio_on_ms * busy.pairs_executed);
  EXPECT_LT(idle.total_radio_on_us, busy.total_radio_on_us);
}

TEST(Crystal, TimeAdvancesByEpochPeriod) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  CrystalNetwork::Config cfg;
  cfg.epoch_period = sim::seconds(1);
  CrystalNetwork net(topo, field, cfg, 0, 4);
  net.run_epoch();
  net.run_epoch();
  EXPECT_EQ(net.now(), sim::seconds(2));
}

TEST(Crystal, BacklogDrainsOverEpochs) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  CrystalNetwork::Config cfg;
  cfg.max_pairs = 4;  // small epochs force carry-over
  CrystalNetwork net(topo, field, cfg, 0, 5);
  for (int i = 0; i < 10; ++i) net.offer_packet(1 + i % 5);
  int delivered = 0;
  for (int e = 0; e < 8 && net.pending_packets() > 0; ++e)
    delivered += net.run_epoch().delivered;
  EXPECT_EQ(delivered, 10);
}

TEST(Crystal, NoiseDetectionExtendsEpochUnderJamming) {
  phy::Topology topo = phy::make_dcube48_topology();
  CrystalNetwork::Config cfg;
  // Jam every hopping channel near the sink, continuously and loudly.
  phy::InterferenceField field;
  phy::BurstJammer::Config jam;
  jam.position = topo.position(0);
  jam.tx_power_dbm = 10.0;
  jam.burst_us = sim::ms(50);
  jam.period_us = sim::ms(50);
  jam.channels.assign(cfg.hop_sequence.begin(), cfg.hop_sequence.end());
  field.add(std::make_unique<phy::BurstJammer>(jam));

  CrystalNetwork net(topo, field, cfg, 0, 6);
  auto stats = net.run_epoch();
  EXPECT_TRUE(stats.noise_detected);
  EXPECT_GT(stats.pairs_executed, cfg.max_silent_pairs);
}

TEST(Crystal, RejectsBadUsage) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  EXPECT_THROW(CrystalNetwork(topo, field, CrystalNetwork::Config{}, 99, 1),
               util::RequireError);
  CrystalNetwork::Config no_hop;
  no_hop.hop_sequence.clear();
  EXPECT_THROW(CrystalNetwork(topo, field, no_hop, 0, 1),
               util::RequireError);
  CrystalNetwork net(topo, field, CrystalNetwork::Config{}, 0, 1);
  EXPECT_THROW(net.offer_packet(0), util::RequireError);  // sink
  EXPECT_THROW(net.offer_packet(99), util::RequireError);
}

TEST(CrystalCollection, CleanRunIsFullyReliable) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  CrystalNetwork net(topo, field, CrystalNetwork::Config{}, 0, 7);
  auto res = run_crystal_collection(net, 5, sim::seconds(5),
                                    sim::minutes(2), 7);
  EXPECT_GT(res.sent, 10);
  EXPECT_DOUBLE_EQ(res.reliability, 1.0);
  EXPECT_GT(res.radio_duty, 0.0);
  EXPECT_LT(res.radio_duty, 0.3);
}

TEST(CrystalCollection, RejectsBadArguments) {
  phy::Topology topo = phy::make_dcube48_topology();
  phy::InterferenceField field;
  CrystalNetwork net(topo, field, CrystalNetwork::Config{}, 0, 8);
  EXPECT_THROW(run_crystal_collection(net, 0, sim::seconds(5),
                                      sim::minutes(1), 1),
               util::RequireError);
  EXPECT_THROW(run_crystal_collection(net, 5, 0, sim::minutes(1), 1),
               util::RequireError);
}

}  // namespace
}  // namespace dimmer::baselines
