// exp/campaign.hpp end-to-end: sharding, kill/resume determinism, worker
// crash recovery, watchdog deadlines, crash-safe artifact writes.
//
// Everything here fork()s, SIGKILLs, or spawns watchdog threads, so this
// suite lives in its own binary (dimmer_test_campaign) and is deliberately
// kept out of the sanitizer matrices in CI — TSan/ASan and fork+_Exit do
// not mix.
#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/journal.hpp"
#include "exp/runner.hpp"
#include "exp/serialize.hpp"
#include "exp/watchdog.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/wallclock.hpp"

using dimmer::exp::Campaign;
using dimmer::exp::CampaignOptions;
using dimmer::exp::CampaignReport;
using dimmer::exp::Trial;
using dimmer::exp::TrialResult;
using dimmer::exp::TrialSpec;
using dimmer::util::Pcg32;

namespace {

std::string make_temp_dir() {
  std::string tmpl = ::testing::TempDir() + "dimmer_campaign_XXXXXX";
  char* got = mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Sets an env var for one scope; restores "unset" on exit so kill-injection
/// knobs can never leak into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

/// Deterministic, cheap trial: a few RNG draws plus spec echoes — enough
/// surface (metrics/stats/series/registry) to catch any round-trip drift.
TrialResult cheap_trial(const TrialSpec& spec, Pcg32& rng) {
  if (spec.scenario == "poison") ::raise(SIGKILL);  // kills the whole worker
  if (spec.scenario == "hang") {
    for (;;) dimmer::util::sleep_seconds(0.05);  // only the watchdog ends it
  }
  TrialResult r;
  double acc = 0.0;
  for (int i = 0; i < 64; ++i) {
    const double x = rng.uniform();
    acc += x;
    r.stats["draw"].add(x);
  }
  r.metrics["acc"] = acc;
  r.metrics["seed_echo"] = static_cast<double>(spec.seed % 4096);
  r.series["first_draws"] = {r.stats["draw"].min(), r.stats["draw"].max()};
  r.registry.counter("trial.draws") = 64;
  return r;
}

/// Same results as cheap_trial (wall_seconds aside), but slow enough that a
/// supervisor armed with DIMMER_CAMPAIGN_ABORT_AFTER reliably dies *mid*
/// campaign instead of after the workers already drained every trial.
TrialResult slow_trial(const TrialSpec& spec, Pcg32& rng) {
  dimmer::util::sleep_seconds(0.03);
  return cheap_trial(spec, rng);
}

std::vector<TrialSpec> make_specs(int per_scenario = 3) {
  std::vector<TrialSpec> specs;
  for (const char* sc : {"calm", "jammed", "storm"}) {
    for (int s = 0; s < per_scenario; ++s) {
      TrialSpec spec;
      spec.scenario = sc;
      spec.seed = static_cast<std::uint64_t>(s);
      spec.params["level"] = 0.15;
      spec.tags["policy"] = sc;
      if (std::string(sc) == "storm") spec.fault_plan.crash_coordinator(30);
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

/// Canonical bytes of a trial with timing scrubbed — the identity the whole
/// engine promises across shard counts and kill histories.
std::string canon(const Trial& t) {
  TrialResult r = t.result;
  r.wall_seconds = 0.0;
  return dimmer::exp::spec_to_json(t.spec) + "\n" +
         dimmer::exp::result_to_json(r);
}

std::vector<std::string> canon_all(const std::vector<Trial>& trials) {
  std::vector<std::string> out;
  out.reserve(trials.size());
  for (const Trial& t : trials) out.push_back(canon(t));
  return out;
}

/// Journal bytes with the only timing field scrubbed (same strip the CI
/// smoke job applies with sed).
std::string scrubbed_journal(const std::string& dir, int shard) {
  static const std::regex kWall(",? ?\"wall_seconds\": [0-9.e+-]+");
  return std::regex_replace(
      slurp(dimmer::exp::shard_journal_path(dir, shard)), kWall, "");
}

CampaignOptions fast_options(const std::string& dir, int shards) {
  CampaignOptions opt;
  opt.dir = dir;
  opt.shards = shards;
  opt.retry_backoff_s = 0.0;  // keep kill-storm tests quick
  opt.trial_timeout_s = 0.0;
  return opt;
}

std::uint64_t counter_of(const CampaignReport& rep, const char* name) {
  const auto& c = rep.counters.counters();
  auto it = c.find(name);
  return it == c.end() ? 0u : it->second;
}

}  // namespace

TEST(Campaign, ShardOfIsRoundRobin) {
  EXPECT_EQ(dimmer::exp::shard_of(0, 3), 0);
  EXPECT_EQ(dimmer::exp::shard_of(1, 3), 1);
  EXPECT_EQ(dimmer::exp::shard_of(5, 3), 2);
  EXPECT_EQ(dimmer::exp::shard_of(7, 1), 0);
  EXPECT_THROW(dimmer::exp::shard_of(0, 0), dimmer::util::RequireError);
}

TEST(Campaign, TimeoutEnvIsStrictlyParsed) {
  EXPECT_DOUBLE_EQ(dimmer::exp::trial_timeout_from_env(), 0.0);  // unset
  {
    ScopedEnv env("DIMMER_TRIAL_TIMEOUT_S", "2.5");
    EXPECT_DOUBLE_EQ(dimmer::exp::trial_timeout_from_env(), 2.5);
  }
  for (const char* bad : {"abc", "-1", "0", " 5", "5s", "inf"}) {
    ScopedEnv env("DIMMER_TRIAL_TIMEOUT_S", bad);
    EXPECT_THROW(dimmer::exp::trial_timeout_from_env(),
                 dimmer::util::RequireError)
        << bad;
  }
}

TEST(Campaign, ShardsEnvIsStrictlyParsed) {
  EXPECT_EQ(dimmer::exp::campaign_shards_from_env(), 1);  // unset
  {
    ScopedEnv env("DIMMER_CAMPAIGN_SHARDS", "8");
    EXPECT_EQ(dimmer::exp::campaign_shards_from_env(), 8);
  }
  for (const char* bad : {"0", "-2", "1000", "two"}) {
    ScopedEnv env("DIMMER_CAMPAIGN_SHARDS", bad);
    EXPECT_THROW(dimmer::exp::campaign_shards_from_env(),
                 dimmer::util::RequireError)
        << bad;
  }
}

TEST(Campaign, MatchesRunnerForAnyShardCount) {
  const std::vector<TrialSpec> specs = make_specs();
  dimmer::exp::Runner runner({.jobs = 1});
  const auto reference = canon_all(runner.run(specs, cheap_trial));

  for (int shards : {1, 4}) {
    const std::string dir = make_temp_dir();
    Campaign campaign(fast_options(dir, shards));
    const CampaignReport rep = campaign.run(specs, cheap_trial);
    EXPECT_FALSE(rep.resumed);
    EXPECT_EQ(canon_all(rep.trials), reference) << shards << " shards";
    EXPECT_EQ(counter_of(rep, "campaign.trials_run"), specs.size());
    EXPECT_EQ(counter_of(rep, "campaign.worker_deaths"), 0u);
    EXPECT_EQ(counter_of(rep, "campaign.trials_failed"), 0u);
  }
}

TEST(Campaign, WorkerKillStormStillMatchesAndJournalsAreByteStable) {
  const std::vector<TrialSpec> specs = make_specs();
  const std::string clean_dir = make_temp_dir();
  const CampaignReport clean =
      Campaign(fast_options(clean_dir, 2)).run(specs, cheap_trial);

  // Every worker SIGKILLs itself after each journal record: the sweep limps
  // through on respawns, one trial per worker lifetime.
  const std::string storm_dir = make_temp_dir();
  CampaignReport storm;
  {
    ScopedEnv env("DIMMER_CAMPAIGN_KILL_AFTER", "1");
    storm = Campaign(fast_options(storm_dir, 2)).run(specs, cheap_trial);
  }
  EXPECT_GE(counter_of(storm, "campaign.worker_deaths"), specs.size() - 2);
  EXPECT_EQ(counter_of(storm, "campaign.trials_failed"), 0u);
  EXPECT_EQ(canon_all(storm.trials), canon_all(clean.trials));
  for (int shard = 0; shard < 2; ++shard) {
    EXPECT_EQ(scrubbed_journal(storm_dir, shard),
              scrubbed_journal(clean_dir, shard))
        << "journal bytes must not depend on kill history (shard " << shard
        << ")";
  }
}

TEST(CampaignDeathTest, SupervisorKilledMidRunResumesExactly) {
  const std::vector<TrialSpec> specs = make_specs();
  const std::string clean_dir = make_temp_dir();
  const CampaignReport clean =
      Campaign(fast_options(clean_dir, 2)).run(specs, cheap_trial);

  const std::string dir = make_temp_dir();
  // Leg 1 (in the death-test child): the supervisor SIGKILLs itself once
  // three records exist across the journals — mid-campaign, workers live.
  EXPECT_EXIT(
      {
        ::setenv("DIMMER_CAMPAIGN_ABORT_AFTER", "3", 1);
        Campaign(fast_options(dir, 2)).run(specs, slow_trial);
      },
      ::testing::KilledBySignal(SIGKILL), "");

  // Leg 2: plain resume. Only the missing trials run; the replayed ones are
  // parsed back from the journals.
  const CampaignReport resumed =
      Campaign(fast_options(dir, 2)).run(specs, slow_trial);
  EXPECT_TRUE(resumed.resumed);
  const std::uint64_t replayed = counter_of(resumed, "campaign.resumed_trials");
  EXPECT_GE(replayed, 3u);
  EXPECT_LT(replayed, specs.size());
  // The crash cost exactly the unfinished trials — nothing was recomputed.
  EXPECT_EQ(counter_of(resumed, "campaign.trials_run"),
            specs.size() - replayed);
  EXPECT_EQ(canon_all(resumed.trials), canon_all(clean.trials));
  for (int shard = 0; shard < 2; ++shard) {
    EXPECT_EQ(scrubbed_journal(dir, shard), scrubbed_journal(clean_dir, shard))
        << "shard " << shard;
  }
}

TEST(Campaign, ResumingCompletedCampaignRunsNothing) {
  const std::vector<TrialSpec> specs = make_specs();
  const std::string dir = make_temp_dir();
  const CampaignReport first =
      Campaign(fast_options(dir, 3)).run(specs, cheap_trial);
  const CampaignReport second =
      Campaign(fast_options(dir, 3)).run(specs, cheap_trial);
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(counter_of(second, "campaign.resumed_trials"), specs.size());
  // trials_run is cumulative across resumes and must not grow: 0 new runs.
  EXPECT_EQ(counter_of(second, "campaign.trials_run"),
            counter_of(first, "campaign.trials_run"));
  EXPECT_EQ(canon_all(second.trials), canon_all(first.trials));
}

TEST(Campaign, CrashLoopingTrialIsFailedButRecorded) {
  std::vector<TrialSpec> specs = make_specs(1);  // 3 healthy trials
  TrialSpec poison;
  poison.scenario = "poison";
  poison.seed = 99;
  specs.push_back(poison);

  const std::string dir = make_temp_dir();
  CampaignOptions opt = fast_options(dir, 2);
  opt.max_attempts = 2;
  const CampaignReport rep = Campaign(opt).run(specs, cheap_trial);

  ASSERT_EQ(rep.trials.size(), specs.size());
  const Trial& bad = rep.trials.back();
  EXPECT_FALSE(bad.result.ok);
  EXPECT_EQ(bad.result.error,
            "campaign: trial exceeded attempt budget (2 attempts)");
  for (std::size_t i = 0; i + 1 < rep.trials.size(); ++i) {
    EXPECT_TRUE(rep.trials[i].result.ok) << i;
  }
  EXPECT_EQ(counter_of(rep, "campaign.trials_failed"), 1u);
  EXPECT_GE(counter_of(rep, "campaign.worker_deaths"), 2u);
  EXPECT_GE(counter_of(rep, "campaign.retries"), 1u);
}

TEST(Campaign, HungTrialTimesOutAndIsFailed) {
  std::vector<TrialSpec> specs = make_specs(1);
  TrialSpec hang;
  hang.scenario = "hang";
  hang.seed = 7;
  specs.push_back(hang);

  const std::string dir = make_temp_dir();
  CampaignOptions opt = fast_options(dir, 1);
  opt.trial_timeout_s = 0.25;
  opt.max_attempts = 2;
  const CampaignReport rep = Campaign(opt).run(specs, cheap_trial);
  EXPECT_FALSE(rep.trials.back().result.ok);
  EXPECT_EQ(counter_of(rep, "campaign.trials_failed"), 1u);
  EXPECT_GE(counter_of(rep, "campaign.worker_deaths"), 2u);
  for (std::size_t i = 0; i + 1 < rep.trials.size(); ++i) {
    EXPECT_TRUE(rep.trials[i].result.ok) << i;
  }
}

TEST(Campaign, MismatchedResumeIsRefused) {
  const std::vector<TrialSpec> specs = make_specs(1);
  const std::string dir = make_temp_dir();
  { (void)Campaign(fast_options(dir, 2)).run(specs, cheap_trial); }

  // Different shard count than the checkpoint was created with.
  EXPECT_THROW((void)Campaign(fast_options(dir, 3)).run(specs, cheap_trial),
               dimmer::util::RequireError);

  // Different spec matrix (digest mismatch).
  std::vector<TrialSpec> other = specs;
  other[0].seed ^= 1;
  EXPECT_THROW((void)Campaign(fast_options(dir, 2)).run(other, cheap_trial),
               dimmer::util::RequireError);

  // Journals present but no checkpoint: refuse rather than clobber.
  ASSERT_EQ(::unlink(dimmer::exp::campaign_checkpoint_path(dir).c_str()), 0);
  EXPECT_THROW((void)Campaign(fast_options(dir, 2)).run(specs, cheap_trial),
               dimmer::util::RequireError);
}

TEST(Campaign, SecondSupervisorIsLockedOut) {
  const std::string dir = make_temp_dir();
  // Hold the directory lock the way a live supervisor would.
  dimmer::exp::AppendLog lock(dir + "/campaign.lock");
  EXPECT_THROW(
      (void)Campaign(fast_options(dir, 1)).run(make_specs(1), cheap_trial),
      dimmer::exp::LogLockedError);
}

TEST(WatchdogDeathTest, HungScopeKillsTheProcessWithDistinctCode) {
  EXPECT_EXIT(
      {
        dimmer::exp::TrialWatchdog dog(0.05);
        auto scope = dog.watch("hung-trial");
        for (;;) dimmer::util::sleep_seconds(0.05);
      },
      ::testing::ExitedWithCode(dimmer::exp::kTrialTimeoutExit), "deadline");
}

TEST(Watchdog, DisabledWatchdogIsInert) {
  dimmer::exp::TrialWatchdog dog(0.0);
  EXPECT_FALSE(dog.enabled());
  auto scope = dog.watch("never-armed");
  dimmer::util::sleep_seconds(0.05);  // nothing should happen
}

TEST(Watchdog, FastTrialOutrunsItsDeadline) {
  dimmer::exp::TrialWatchdog dog(5.0);
  for (int i = 0; i < 3; ++i) {
    auto scope = dog.watch("quick");
  }
}

TEST(AtomicWriteDeathTest, KilledMidWriteLeavesOldArtifactIntact) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/BENCH_test.json";
  dimmer::util::write_file_atomic(path, "{\"complete\": \"old\"}\n");

  // The writer stages bytes, then the process is SIGKILLed before commit —
  // the exact failure the atomic recipe exists for.
  EXPECT_EXIT(
      {
        dimmer::util::AtomicFileWriter w(path);
        w.append("{\"complete\": fal");  // torn new contents
        ::raise(SIGKILL);
      },
      ::testing::KilledBySignal(SIGKILL), "");

  EXPECT_EQ(slurp(path), "{\"complete\": \"old\"}\n")
      << "a killed writer must never be visible in the artifact";
  // And the next writer reclaims whatever temp debris the kill left behind.
  dimmer::util::write_file_atomic(path, "{\"complete\": \"new\"}\n");
  EXPECT_EQ(slurp(path), "{\"complete\": \"new\"}\n");
  struct stat st{};
  EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0);
}
