#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/json.hpp"

namespace dimmer::exp {
namespace {

std::vector<Trial> sample_trials() {
  std::vector<Trial> trials(2);
  trials[0].spec.scenario = "dimmer@15%";
  trials[0].spec.seed = 42;
  trials[0].spec.params["level"] = 0.15;
  trials[0].spec.tags["protocol"] = "dimmer";
  trials[0].result.metrics["reliability"] = 0.9375;  // exact in binary
  trials[0].result.metrics["radio_on_ms"] = 12.3;
  trials[0].result.stats["rel"].add(0.99);
  trials[0].result.stats["rel"].add(0.996);
  trials[0].result.series["n_tx"] = {3, 4, 4, 3};
  trials[0].result.wall_seconds = 1.5;

  trials[1].spec.scenario = "dimmer@15%";
  trials[1].spec.seed = 43;
  trials[1].result.ok = false;
  trials[1].result.error = "died with \"quotes\"\nand newline";
  return trials;
}

TEST(Json, ContainsSchemaAndScenarioAggregates) {
  std::string s = to_json("fig5_levels", sample_trials());
  EXPECT_NE(s.find("\"bench\": \"fig5_levels\""), std::string::npos);
  EXPECT_NE(s.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(s.find("\"dimmer@15%\""), std::string::npos);
  EXPECT_NE(s.find("\"reliability\": 0.9375"), std::string::npos);
  // The failed trial is excluded from aggregates: one ok trial.
  EXPECT_NE(s.find("\"trials\": 1"), std::string::npos);
}

TEST(Json, EscapesErrorStrings) {
  std::string s = to_json("x", sample_trials());
  EXPECT_NE(s.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(s.find("\\n"), std::string::npos);
  EXPECT_EQ(s.find('\r'), std::string::npos);
}

TEST(Json, TimingFieldsAreOptional) {
  JsonOptions with{.include_timing = true, .jobs = 8, .wall_seconds = 3.25};
  JsonOptions without{.include_timing = false};
  std::string a = to_json("x", sample_trials(), with);
  std::string b = to_json("x", sample_trials(), without);
  EXPECT_NE(a.find("\"jobs\": 8"), std::string::npos);
  EXPECT_NE(a.find("\"wall_seconds\": 3.25"), std::string::npos);
  EXPECT_EQ(b.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(b.find("jobs"), std::string::npos);
}

TEST(Json, SerializationIsDeterministic) {
  JsonOptions opt{.include_timing = false};
  EXPECT_EQ(to_json("x", sample_trials(), opt),
            to_json("x", sample_trials(), opt));
}

TEST(Json, DoublesRoundTripExactly) {
  std::vector<Trial> trials(1);
  trials[0].spec.scenario = "s";
  double v = 0.1 + 0.2;  // 0.30000000000000004
  trials[0].result.metrics["v"] = v;
  std::string s = to_json("x", trials, {.include_timing = false});
  auto pos = s.find("\"v\": ");
  ASSERT_NE(pos, std::string::npos);
  double back = std::strtod(s.c_str() + pos + 5, nullptr);
  EXPECT_EQ(back, v);
}

// The merged registry section sits at top level (two-space indent); the
// pre-existing per-trial "metrics" maps are indented deeper and unaffected.
constexpr const char* kTopLevelMetrics = "\n  \"metrics\": {";

TEST(Json, MetricsSectionOmittedWhenNoRegistryData) {
  std::string s = to_json("x", sample_trials());
  EXPECT_EQ(s.find(kTopLevelMetrics), std::string::npos);
  EXPECT_NE(s.find("\"schema_version\": 1"), std::string::npos);
}

TEST(Json, MetricsSectionMergesTrialRegistries) {
  std::vector<Trial> trials = sample_trials();
  trials[0].result.registry.counter("flood.runs") += 30;
  trials[0].result.registry.histogram("protocol.reliability", {0.9, 0.99})
      .add(0.95);

  std::vector<Trial> more(1);
  more[0].spec.scenario = "dimmer@30%";
  more[0].result.registry.counter("flood.runs") += 12;
  more[0].result.registry.histogram("protocol.reliability", {0.9, 0.99})
      .add(1.0);
  trials.push_back(more[0]);

  std::string s = to_json("x", trials, {.include_timing = false});
  EXPECT_NE(s.find(kTopLevelMetrics), std::string::npos);
  EXPECT_NE(s.find("\"flood.runs\": 42"), std::string::npos);  // 30 + 12
  EXPECT_NE(s.find("\"protocol.reliability\""), std::string::npos);

  // Failed trials contribute no metrics.
  trials[1].result.registry.counter("flood.runs") += 1000;
  std::string s2 = to_json("x", trials, {.include_timing = false});
  EXPECT_NE(s2.find("\"flood.runs\": 42"), std::string::npos);
}

TEST(Json, WriteJsonHonoursOutputDirEnv) {
  ASSERT_EQ(setenv("DIMMER_BENCH_OUT", "/tmp", 1), 0);
  EXPECT_EQ(output_path("unit"), "/tmp/BENCH_unit.json");
  write_json("unit", sample_trials());
  std::ifstream f("/tmp/BENCH_unit.json");
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), to_json("unit", sample_trials()));
  std::remove("/tmp/BENCH_unit.json");
  ASSERT_EQ(unsetenv("DIMMER_BENCH_OUT"), 0);
}

TEST(Json, WriteJsonToUnwritableDirFailsGracefully) {
  ASSERT_EQ(setenv("DIMMER_BENCH_OUT", "/tmp/no/such/dir", 1), 0);
  // A bad output dir must not throw/abort: the sweep's results have
  // already been printed by the time the artifact is written.
  EXPECT_FALSE(write_json("unit", sample_trials()));
  ASSERT_EQ(unsetenv("DIMMER_BENCH_OUT"), 0);
  EXPECT_TRUE(write_json("unit", sample_trials()));
  std::remove("BENCH_unit.json");
}

}  // namespace
}  // namespace dimmer::exp
