// exp/serialize.hpp: specs and results must round-trip *exactly* — the
// campaign checkpoint and journals are parsed back after a kill, and merged
// output must be byte-identical to a run that never died.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/serialize.hpp"
#include "util/check.hpp"
#include "util/json_parse.hpp"

using dimmer::exp::result_from_value;
using dimmer::exp::result_to_json;
using dimmer::exp::spec_digest;
using dimmer::exp::spec_from_value;
using dimmer::exp::spec_to_json;
using dimmer::exp::specs_digest;
using dimmer::exp::TrialResult;
using dimmer::exp::TrialSpec;
using dimmer::util::json::parse;

namespace {

TrialSpec full_spec() {
  TrialSpec s;
  s.scenario = "storm/cold";
  s.seed = 18446744073709551615ULL;  // all 64 bits must survive
  s.params["interference"] = 0.35;
  s.params["reward_c"] = 1.0 / 3.0;
  s.tags["mode"] = "cold";
  s.tags["faults"] = "storm";
  s.fault_plan.crash_coordinator(30).blackout(30, 40, 0.35).crash(45, 9);
  return s;
}

TrialResult full_result() {
  TrialResult r;
  r.metrics["reliability"] = 0.987654321012345678;
  r.metrics["dip"] = 0.25;
  r.stats["reliability"].add(0.9);
  r.stats["reliability"].add(0.99);
  r.stats["reliability"].add(0.95);
  r.stats["empty_dist"];  // count == 0: sentinel min/max must round-trip
  r.series["n_tx"] = {4.0, 3.0, 2.0, 2.0};
  r.registry.counter("flood.slots") = 9007199254740993ULL;  // 2^53 + 1
  r.registry.gauge("rl.epsilon") = 0.1;
  r.wall_seconds = 1.25;
  return r;
}

}  // namespace

TEST(Serialize, SpecRoundTripsExactly) {
  const TrialSpec s = full_spec();
  const std::string text = spec_to_json(s);
  const TrialSpec back = spec_from_value(parse(text));
  EXPECT_EQ(spec_to_json(back), text);
  EXPECT_EQ(back.scenario, s.scenario);
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_EQ(back.params, s.params);
  EXPECT_EQ(back.tags, s.tags);
  ASSERT_EQ(back.fault_plan.size(), s.fault_plan.size());
  EXPECT_EQ(dimmer::fault::to_json(back.fault_plan),
            dimmer::fault::to_json(s.fault_plan));
}

TEST(Serialize, EmptySpecSectionsAreOmitted) {
  TrialSpec s;
  s.scenario = "baseline";
  s.seed = 7;
  const std::string text = spec_to_json(s);
  EXPECT_EQ(text.find("params"), std::string::npos);
  EXPECT_EQ(text.find("tags"), std::string::npos);
  EXPECT_EQ(text.find("fault_plan"), std::string::npos);
  const TrialSpec back = spec_from_value(parse(text));
  EXPECT_EQ(spec_to_json(back), text);
  EXPECT_TRUE(back.fault_plan.empty());
}

TEST(Serialize, ResultRoundTripsExactly) {
  const TrialResult r = full_result();
  const std::string text = result_to_json(r);
  const TrialResult back = result_from_value(parse(text));
  EXPECT_EQ(result_to_json(back), text);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.metrics, r.metrics);
  EXPECT_EQ(back.series, r.series);
  EXPECT_EQ(back.registry.to_json(), r.registry.to_json());
  EXPECT_DOUBLE_EQ(back.wall_seconds, 1.25);
  // RunningStats internal state (count/mean/m2/min/max) is preserved, so
  // merges of replayed trials equal merges of the originals bit-for-bit.
  const auto& orig = r.stats.at("reliability");
  const auto& got = back.stats.at("reliability");
  EXPECT_EQ(got.count(), orig.count());
  EXPECT_EQ(got.mean(), orig.mean());
  EXPECT_EQ(got.m2(), orig.m2());
  EXPECT_EQ(got.min(), orig.min());
  EXPECT_EQ(got.max(), orig.max());
  EXPECT_EQ(back.stats.at("empty_dist").count(), 0u);
}

TEST(Serialize, FailedResultCarriesError) {
  TrialResult r;
  r.ok = false;
  r.error = "campaign: trial exceeded attempt budget (3 attempts)";
  const std::string text = result_to_json(r);
  const TrialResult back = result_from_value(parse(text));
  EXPECT_EQ(result_to_json(back), text);
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, r.error);
}

TEST(Serialize, NonFiniteMetricFailsReplayLoudly) {
  TrialResult r;
  r.metrics["bad"] = std::nan("");
  // json_number prints NaN as null; replay must refuse to resurrect it as 0.
  const std::string text = result_to_json(r);
  EXPECT_THROW(result_from_value(parse(text)), dimmer::util::RequireError);
}

TEST(Serialize, DigestIsStableAndOrderSensitive) {
  // Pinned value: a silent serialization change must fail this test, because
  // it would orphan every existing campaign checkpoint.
  EXPECT_EQ(dimmer::exp::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(dimmer::exp::fnv1a64("dimmer"), dimmer::exp::fnv1a64("dimmer"));
  EXPECT_NE(dimmer::exp::fnv1a64("dimmer"), dimmer::exp::fnv1a64("dimmeR"));

  TrialSpec a = full_spec();
  TrialSpec b;
  b.scenario = "baseline";
  b.seed = 1;
  EXPECT_EQ(spec_digest(a), spec_digest(full_spec()));
  EXPECT_NE(spec_digest(a), spec_digest(b));

  const std::vector<TrialSpec> ab = {a, b};
  const std::vector<TrialSpec> ba = {b, a};
  EXPECT_EQ(specs_digest(ab), specs_digest(ab));
  EXPECT_NE(specs_digest(ab), specs_digest(ba)) << "digest must be order-aware";
  TrialSpec a2 = a;
  a2.seed ^= 1;
  EXPECT_NE(specs_digest(ab), specs_digest({a2, b}));
}
