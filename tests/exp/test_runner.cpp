#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "util/check.hpp"

namespace dimmer::exp {
namespace {

// A deterministic but seed- and RNG-sensitive fake workload: any divergence
// in spec routing or RNG forking shows up in the metrics.
TrialResult fake_trial(const TrialSpec& spec, util::Pcg32& rng) {
  TrialResult r;
  util::RunningStats per_round;
  double acc = 0.0;
  int rounds = 50 + static_cast<int>(spec.seed % 17);
  for (int i = 0; i < rounds; ++i) {
    double x = rng.uniform() + 0.01 * static_cast<double>(spec.seed);
    acc += x;
    per_round.add(x);
  }
  r.metrics["acc"] = acc;
  r.metrics["rounds"] = rounds;
  r.stats["x"] = per_round;
  r.series["x_head"] = {acc / rounds, per_round.min(), per_round.max()};
  return r;
}

std::vector<TrialSpec> small_sweep() {
  std::vector<TrialSpec> specs;
  for (int s = 0; s < 24; ++s) {
    TrialSpec spec;
    // Indexed instead of a ternary chain: GCC 12's -Wrestrict misfires on
    // const char* ternaries assigned to std::string under -O2 inlining.
    static const char* const kScenarios[3] = {"a", "b", "c"};
    spec.scenario = kScenarios[s % 3];
    spec.seed = static_cast<std::uint64_t>(1000 + s * 7);
    spec.params["s"] = s;
    specs.push_back(spec);
  }
  return specs;
}

TEST(Runner, PreservesSpecOrder) {
  Runner runner({.jobs = 4});
  auto trials = runner.run(small_sweep(), fake_trial);
  ASSERT_EQ(trials.size(), 24u);
  for (int s = 0; s < 24; ++s) {
    EXPECT_EQ(trials[s].spec.seed, static_cast<std::uint64_t>(1000 + s * 7));
    EXPECT_TRUE(trials[s].result.ok);
  }
}

TEST(Runner, BitIdenticalAcrossJobCounts) {
  auto one = Runner({.jobs = 1}).run(small_sweep(), fake_trial);
  auto eight = Runner({.jobs = 8}).run(small_sweep(), fake_trial);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    // Exact equality, not near: the parallel schedule must not perturb a
    // single bit of any trial's arithmetic.
    EXPECT_EQ(one[i].result.metrics, eight[i].result.metrics);
    EXPECT_EQ(one[i].result.series, eight[i].result.series);
    EXPECT_EQ(one[i].result.stats.at("x").mean(),
              eight[i].result.stats.at("x").mean());
    EXPECT_EQ(one[i].result.stats.at("x").variance(),
              eight[i].result.stats.at("x").variance());
  }
  // And the serialized artifact (minus timing) is byte-identical.
  JsonOptions no_timing{.include_timing = false};
  EXPECT_EQ(to_json("sweep", one, no_timing), to_json("sweep", eight, no_timing));
}

TEST(Runner, MoreWorkersThanTrialsIsFine) {
  std::vector<TrialSpec> specs(2);
  specs[0].seed = 1;
  specs[1].seed = 2;
  auto trials = Runner({.jobs = 16}).run(specs, fake_trial);
  ASSERT_EQ(trials.size(), 2u);
  EXPECT_TRUE(trials[0].result.ok);
  EXPECT_TRUE(trials[1].result.ok);
}

TEST(Runner, WorkersRunConcurrently) {
  // 4 trials that all wait for each other: only completes if the pool
  // actually runs them in parallel.
  std::atomic<int> arrived{0};
  auto fn = [&](const TrialSpec&, util::Pcg32&) {
    arrived.fetch_add(1);
    while (arrived.load() < 4) std::this_thread::yield();
    return TrialResult{};
  };
  auto trials = Runner({.jobs = 4}).run(std::vector<TrialSpec>(4), fn);
  for (const Trial& t : trials) EXPECT_TRUE(t.result.ok);
}

TEST(Runner, CapturesTrialExceptions) {
  std::vector<TrialSpec> specs = small_sweep();
  auto fn = [](const TrialSpec& spec, util::Pcg32& rng) {
    if (spec.seed == 1007) throw std::runtime_error("boom in trial");
    return fake_trial(spec, rng);
  };
  auto trials = Runner({.jobs = 8}).run(specs, fn);
  int failed = 0;
  for (const Trial& t : trials) {
    if (t.result.ok) continue;
    ++failed;
    EXPECT_EQ(t.spec.seed, 1007u);
    EXPECT_NE(t.result.error.find("boom in trial"), std::string::npos);
  }
  EXPECT_EQ(failed, 1);
}

TEST(Runner, JobsFromEnvParsesOverride) {
  ASSERT_EQ(setenv("DIMMER_JOBS", "3", 1), 0);
  EXPECT_EQ(jobs_from_env(), 3);
  ASSERT_EQ(setenv("DIMMER_JOBS", "64", 1), 0);
  EXPECT_EQ(jobs_from_env(), 64);
  ASSERT_EQ(unsetenv("DIMMER_JOBS"), 0);
  EXPECT_GE(jobs_from_env(), 1);  // hardware_concurrency fallback
}

TEST(Runner, JobsFromEnvRejectsMalformedValues) {
  // Regression: the old std::atoi parse silently accepted trailing garbage
  // ("8x" ran 8 jobs), read hex-looking values as their decimal prefix
  // ("0x10" -> 0 -> silent hardware fallback), and was UB on out-of-range
  // input. Every malformed override must now fail loudly instead of running
  // a sweep at an unintended parallelism.
  const char* bad[] = {"8x",      "0x10", "garbage", "",   " 8",
                       "3.5",     "1e2",  "0",       "-2", "99999999999999999999"};
  for (const char* v : bad) {
    ASSERT_EQ(setenv("DIMMER_JOBS", v, 1), 0);
    EXPECT_THROW((void)jobs_from_env(), util::RequireError)
        << "DIMMER_JOBS=\"" << v << "\" must be rejected";
  }
  ASSERT_EQ(unsetenv("DIMMER_JOBS"), 0);
}

TEST(Aggregation, MetricStatsGroupsByScenario) {
  auto trials = Runner({.jobs = 4}).run(small_sweep(), fake_trial);
  util::RunningStats a = metric_stats(trials, "a", "acc");
  util::RunningStats all = metric_stats(trials, "", "acc");
  EXPECT_EQ(a.count(), 8u);
  EXPECT_EQ(all.count(), 24u);
  // Group mean equals hand-computed mean over the group's trials.
  double sum = 0.0;
  for (const Trial& t : trials)
    if (t.spec.scenario == "a") sum += t.result.metrics.at("acc");
  EXPECT_NEAR(a.mean(), sum / 8.0, 1e-12);
}

TEST(Aggregation, MergedStatEqualsSequentialAdd) {
  auto trials = Runner({.jobs = 4}).run(small_sweep(), fake_trial);
  util::RunningStats merged = merged_stat(trials, "b", "x");
  // Re-run the same trials inline and pour every sample into one stream.
  util::RunningStats seq;
  auto one = Runner({.jobs = 1}).run(small_sweep(), fake_trial);
  for (const Trial& t : one) {
    if (t.spec.scenario != "b") continue;
    const util::RunningStats& s = t.result.stats.at("x");
    (void)s;
  }
  // Counts must line up (8 trials x 50..66 rounds each).
  std::size_t expect_count = 0;
  for (const Trial& t : one)
    if (t.spec.scenario == "b") expect_count += t.result.stats.at("x").count();
  EXPECT_EQ(merged.count(), expect_count);
  for (const Trial& t : one)
    if (t.spec.scenario == "b") seq.merge(t.result.stats.at("x"));
  EXPECT_DOUBLE_EQ(merged.mean(), seq.mean());
  EXPECT_DOUBLE_EQ(merged.variance(), seq.variance());
}

}  // namespace
}  // namespace dimmer::exp
