// exp/journal.hpp: append-only JSONL journals must replay cleanly after any
// kill — torn tails dropped, real corruption loud, one writer at a time.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exp/journal.hpp"
#include "exp/serialize.hpp"
#include "util/check.hpp"

using dimmer::exp::AppendLog;
using dimmer::exp::attempt_record;
using dimmer::exp::done_record;
using dimmer::exp::failed_record;
using dimmer::exp::LogLockedError;
using dimmer::exp::replay_attempts;
using dimmer::exp::replay_journal;
using dimmer::exp::TrialResult;

namespace {

std::string make_temp_dir() {
  std::string tmpl = ::testing::TempDir() + "dimmer_journal_XXXXXX";
  char* got = mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

TrialResult result_with(double reliability) {
  TrialResult r;
  r.metrics["reliability"] = reliability;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

TEST(Journal, PathsAreZeroPadded) {
  EXPECT_EQ(dimmer::exp::shard_journal_path("d", 0), "d/shard_000.jsonl");
  EXPECT_EQ(dimmer::exp::shard_journal_path("d", 42), "d/shard_042.jsonl");
  EXPECT_EQ(dimmer::exp::shard_attempts_path("d", 7),
            "d/shard_007.attempts.jsonl");
}

TEST(Journal, AppendThenReplay) {
  const std::string path = make_temp_dir() + "/shard_000.jsonl";
  {
    AppendLog log(path);
    log.append_line(done_record(0, 111, result_with(0.9)));
    log.append_line(done_record(2, 222, result_with(0.8)));
    TrialResult failed;
    failed.ok = false;
    failed.error = "campaign: trial exceeded attempt budget (3 attempts)";
    log.append_line(failed_record(4, 444, failed));
  }
  const auto rep = replay_journal(path);
  EXPECT_EQ(rep.torn_bytes, 0u);
  ASSERT_EQ(rep.records.size(), 3u);
  EXPECT_FALSE(rep.records.at(0).failed);
  EXPECT_EQ(rep.records.at(0).digest, 111u);
  EXPECT_DOUBLE_EQ(rep.records.at(2).result.metrics.at("reliability"), 0.8);
  EXPECT_TRUE(rep.records.at(4).failed);
  EXPECT_FALSE(rep.records.at(4).result.ok);
}

TEST(Journal, MissingFileIsEmpty) {
  const auto rep = replay_journal(make_temp_dir() + "/never_written.jsonl");
  EXPECT_TRUE(rep.records.empty());
  EXPECT_EQ(rep.torn_bytes, 0u);
}

TEST(Journal, TornTailIsDroppedAndRepaired) {
  const std::string path = make_temp_dir() + "/shard_000.jsonl";
  { AppendLog(path).append_line(done_record(0, 1, result_with(0.5))); }
  // Simulate the kill moment: a record fragment with no terminating newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"type\": \"done\", \"trial\": 1, \"TORNFRAG";
  }
  auto rep = replay_journal(path);
  EXPECT_EQ(rep.records.size(), 1u);
  EXPECT_GT(rep.torn_bytes, 0u);

  // Re-opening the log truncates the fragment; the next append lands on a
  // clean prefix and replay sees both records, no torn bytes.
  { AppendLog(path).append_line(done_record(1, 2, result_with(0.6))); }
  rep = replay_journal(path);
  EXPECT_EQ(rep.records.size(), 2u);
  EXPECT_EQ(rep.torn_bytes, 0u);
  EXPECT_EQ(slurp(path).find("TORNFRAG"), std::string::npos);
}

TEST(Journal, MidFileCorruptionThrows) {
  const std::string path = make_temp_dir() + "/shard_000.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << done_record(0, 1, result_with(0.5)) << "\n";
    out << "!! not json !!\n";
    out << done_record(1, 2, result_with(0.6)) << "\n";
  }
  // A *terminated* unparsable line is an integrity failure, not a torn tail.
  EXPECT_THROW(replay_journal(path), std::exception);
}

TEST(Journal, DuplicateTrialRecordThrows) {
  const std::string path = make_temp_dir() + "/shard_000.jsonl";
  {
    AppendLog log(path);
    log.append_line(done_record(3, 1, result_with(0.5)));
    log.append_line(done_record(3, 1, result_with(0.5)));
  }
  EXPECT_THROW(replay_journal(path), dimmer::util::RequireError);
}

TEST(Journal, RejectsEmbeddedNewline) {
  const std::string path = make_temp_dir() + "/shard_000.jsonl";
  AppendLog log(path);
  EXPECT_THROW(log.append_line("two\nlines"), dimmer::util::RequireError);
}

TEST(Journal, SecondWriterIsLockedOut) {
  const std::string path = make_temp_dir() + "/shard_000.jsonl";
  AppendLog first(path);
  EXPECT_THROW(AppendLog second(path), LogLockedError);
}

TEST(Journal, AttemptsReplayTracksHighestAndEnforcesOrder) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/shard_000.attempts.jsonl";
  {
    AppendLog log(path);
    log.append_line(attempt_record(0, 1));
    log.append_line(attempt_record(5, 1));
    log.append_line(attempt_record(5, 2));
    log.append_line(attempt_record(5, 3));
  }
  const auto rep = replay_attempts(path);
  EXPECT_EQ(rep.attempts.at(0), 1);
  EXPECT_EQ(rep.attempts.at(5), 3);

  const std::string bad = dir + "/bad.attempts.jsonl";
  {
    AppendLog log(bad);
    log.append_line(attempt_record(2, 1));
    log.append_line(attempt_record(2, 3));  // skipped attempt 2
  }
  EXPECT_THROW(replay_attempts(bad), dimmer::util::RequireError);
}
