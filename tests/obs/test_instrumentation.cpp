// End-to-end instrumentation: the protocol stack with sinks attached must
// (a) behave bit-identically to the uninstrumented stack, (b) emit valid
// structured events at every layer, and (c) record coherent metrics.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/features.hpp"
#include "core/protocol.hpp"
#include "core/scenarios.hpp"
#include "core/trace_env.hpp"
#include "flood/glossy.hpp"
#include "json_validator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phy/topology.hpp"
#include "rl/dqn.hpp"

namespace dimmer {
namespace {

using dimmer::test::JsonValidator;

core::DimmerNetwork make_net(const phy::Topology& topo,
                             const phy::InterferenceField& field,
                             bool with_mab) {
  core::ProtocolConfig cfg;
  cfg.forwarder_selection = with_mab;
  cfg.mab_calm_rounds = 0;
  return core::DimmerNetwork(topo, field, cfg,
                             std::make_unique<core::StaticController>(3), 0,
                             77);
}

std::vector<phy::NodeId> all_sources(const phy::Topology& topo) {
  std::vector<phy::NodeId> s;
  for (int i = 0; i < topo.size(); ++i) s.push_back(i);
  return s;
}

TEST(Instrumentation, DoesNotPerturbSimulationResults) {
  phy::Topology topo = phy::make_line_topology(6, 12.0);
  phy::InterferenceField field;
  core::add_static_jamming(field, topo, 0.20);
  auto sources = all_sources(topo);

  core::DimmerNetwork plain = make_net(topo, field, true);
  core::DimmerNetwork instrumented = make_net(topo, field, true);
  obs::MetricsRegistry metrics;
  obs::RingBufferSink ring(4096);
  instrumented.set_instrumentation({&ring, &metrics});

  for (int r = 0; r < 40; ++r) {
    core::RoundStats a = plain.run_round(sources);
    core::RoundStats b = instrumented.run_round(sources);
    ASSERT_EQ(a.reliability, b.reliability) << "round " << r;
    ASSERT_EQ(a.radio_on_ms, b.radio_on_ms) << "round " << r;
    ASSERT_EQ(a.n_tx, b.n_tx) << "round " << r;
    ASSERT_EQ(a.lossless, b.lossless) << "round " << r;
    ASSERT_EQ(a.active_forwarders, b.active_forwarders) << "round " << r;
    ASSERT_EQ(a.total_radio_on_us, b.total_radio_on_us) << "round " << r;
  }
  EXPECT_GT(ring.total(), 0u);
  EXPECT_FALSE(metrics.empty());
}

TEST(Instrumentation, EmitsEventsFromEveryLayer) {
  phy::Topology topo = phy::make_line_topology(5, 12.0);
  phy::InterferenceField field;
  auto sources = all_sources(topo);

  core::DimmerNetwork net = make_net(topo, field, true);
  obs::RingBufferSink ring(1 << 16);
  obs::MetricsRegistry metrics;
  net.set_instrumentation({&ring, &metrics});
  for (int r = 0; r < 30; ++r) net.run_round(sources);

  std::set<std::string> kinds;
  for (const obs::TraceEvent& e : ring.events()) {
    kinds.insert(e.kind);
    EXPECT_TRUE(JsonValidator::valid(e.to_jsonl())) << e.to_jsonl();
  }
  EXPECT_TRUE(kinds.count("flood"));
  EXPECT_TRUE(kinds.count("lwb_round"));
  EXPECT_TRUE(kinds.count("round"));
  EXPECT_TRUE(kinds.count("exp3"));  // mab_calm_rounds = 0: learning rounds

  // Metrics from every layer under their subsystem prefixes.
  EXPECT_GT(metrics.counters().at("flood.runs"), 0u);
  EXPECT_GT(metrics.counters().at("lwb.rounds"), 0u);
  EXPECT_EQ(metrics.counters().at("protocol.rounds"), 30u);
  EXPECT_GT(metrics.counters().at("mab.updates"), 0u);
  // One flood per slot: control + |sources| data slots per round.
  EXPECT_EQ(metrics.counters().at("flood.runs"),
            30u * (1u + sources.size()));
}

TEST(Instrumentation, DqnControllerTracesQValues) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  auto sources = all_sources(topo);

  core::FeatureConfig fcfg;
  core::FeatureBuilder fb(fcfg);
  rl::Mlp policy({fb.input_size(), 30, 3}, 1);  // untrained: tracing only
  core::ProtocolConfig cfg;
  core::DimmerNetwork net(
      topo, field, cfg,
      std::make_unique<core::DqnController>(rl::QuantizedMlp(policy), fcfg),
      0, 5);

  obs::RingBufferSink ring(4096);
  net.set_instrumentation({&ring, nullptr});
  for (int r = 0; r < 5; ++r) net.run_round(sources);

  bool saw_controller = false;
  for (const obs::TraceEvent& e : ring.events()) {
    if (e.kind != "controller") continue;
    saw_controller = true;
    std::set<std::string> keys;
    for (const auto& [k, v] : e.fields) keys.insert(k);
    EXPECT_TRUE(keys.count("q0") && keys.count("q1") && keys.count("q2"));
    EXPECT_TRUE(keys.count("action") && keys.count("n_tx"));
  }
  EXPECT_TRUE(saw_controller);
}

TEST(Instrumentation, DqnAgentEmitsStepEvents) {
  rl::DqnConfig cfg;
  cfg.architecture = {4, 8, 3};
  cfg.min_replay_before_training = 32;
  cfg.batch_size = 8;
  rl::DqnAgent agent(cfg, 11);
  obs::RingBufferSink ring(256);
  obs::MetricsRegistry metrics;
  agent.set_instrumentation({&ring, &metrics});

  util::Pcg32 rng(3);
  std::vector<double> s(4, 0.5);
  for (int i = 0; i < 64; ++i) {
    int a = agent.select_action(s, rng);
    agent.observe(rl::Transition{s, a, 0.5, s, false, -1.0}, rng);
  }
  EXPECT_EQ(ring.total(), 64u);
  EXPECT_EQ(metrics.counters().at("dqn.observations"), 64u);
  EXPECT_GT(metrics.counters().at("dqn.train_steps"), 0u);
  for (const obs::TraceEvent& e : ring.events()) {
    EXPECT_EQ(e.kind, "dqn_step");
    EXPECT_TRUE(JsonValidator::valid(e.to_jsonl()));
  }
}

TEST(Instrumentation, GlossyFloodChargesNoRngWhenObserved) {
  // The flood engine must consume the identical RNG stream with and without
  // a sink: same seeds in, same FloodResult out.
  phy::Topology topo = phy::make_line_topology(5, 12.0);
  phy::InterferenceField field;
  std::vector<flood::NodeFloodConfig> cfgs(5, flood::NodeFloodConfig{2, true});
  flood::FloodParams params;

  flood::GlossyFlood plain(topo, field);
  flood::GlossyFlood observed(topo, field);
  obs::MetricsRegistry metrics;
  obs::RingBufferSink ring(64);
  observed.set_instrumentation({&ring, &metrics});

  util::Pcg32 rng_a(99), rng_b(99);
  for (int i = 0; i < 20; ++i) {
    flood::FloodResult a = plain.run(0, cfgs, params, rng_a);
    flood::FloodResult b = observed.run(0, cfgs, params, rng_b);
    // Both streams advance by one comparison draw, staying aligned.
    ASSERT_EQ(rng_a.next_u32(), rng_b.next_u32()) << "RNG streams diverged";
    ASSERT_EQ(a.steps_simulated, b.steps_simulated);
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
      ASSERT_EQ(a.nodes[n].received, b.nodes[n].received);
      ASSERT_EQ(a.nodes[n].radio_on_us, b.nodes[n].radio_on_us);
    }
  }
  EXPECT_EQ(metrics.counters().at("flood.runs"), 20u);
}

TEST(Instrumentation, TrainerConfigForwardsInstrumentation) {
  phy::Topology topo = phy::make_line_topology(4, 12.0);
  phy::InterferenceField field;
  core::TraceCollectionConfig tc;
  tc.steps = 60;
  core::TraceDataset ds = core::collect_traces(topo, field, tc);

  core::TraceEnv::Config env_cfg;
  env_cfg.episode_len = 10;
  core::TrainerConfig cfg;
  cfg.total_steps = 40;
  cfg.dqn.min_replay_before_training = 16;
  cfg.dqn.batch_size = 8;
  obs::MetricsRegistry metrics;
  cfg.instrumentation = {nullptr, &metrics};

  core::train_dqn_on_traces(ds, env_cfg, cfg);
  EXPECT_EQ(metrics.counters().at("dqn.observations"), 40u);
  EXPECT_EQ(metrics.counters().at("trace_env.steps"), 40u);
  EXPECT_GT(metrics.counters().at("trace_env.episodes"), 0u);
}

}  // namespace
}  // namespace dimmer
