// TraceEvent serialization and the three TraceSink implementations.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "json_validator.hpp"
#include "util/check.hpp"

namespace dimmer::obs {
namespace {

using dimmer::test::JsonValidator;

TEST(TraceEvent, JsonlContainsHeaderAndFields) {
  TraceEvent e;
  e.kind = "flood";
  e.round = 42;
  e.t_us = 168000;
  e.node = 3;
  e.f("receivers", 17).f("delivery_ratio", 0.5);
  e.tag("scenario", "dimmer");

  std::string line = e.to_jsonl();
  EXPECT_TRUE(JsonValidator::valid(line)) << line;
  EXPECT_NE(line.find("\"event\": \"flood\""), std::string::npos);
  EXPECT_NE(line.find("\"round\": 42"), std::string::npos);
  EXPECT_NE(line.find("\"t_us\": 168000"), std::string::npos);
  EXPECT_NE(line.find("\"node\": 3"), std::string::npos);
  EXPECT_NE(line.find("\"receivers\": 17"), std::string::npos);
  EXPECT_NE(line.find("\"scenario\": \"dimmer\""), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line, no newline
}

TEST(TraceEvent, OmitsEmptySectionsAndEscapesStrings) {
  TraceEvent e;
  e.kind = "a\"b\nc";
  std::string line = e.to_jsonl();
  EXPECT_TRUE(JsonValidator::valid(line)) << line;
  EXPECT_EQ(line.find("fields"), std::string::npos);
  EXPECT_EQ(line.find("tags"), std::string::npos);
  EXPECT_NE(line.find("\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
}

TEST(TraceEvent, NonFiniteFieldsBecomeNull) {
  TraceEvent e;
  e.kind = "x";
  e.f("bad", std::numeric_limits<double>::infinity());
  std::string line = e.to_jsonl();
  EXPECT_TRUE(JsonValidator::valid(line)) << line;
  EXPECT_NE(line.find("\"bad\": null"), std::string::npos);
}

TEST(RingBufferSink, KeepsMostRecentEvents) {
  RingBufferSink sink(3);
  for (int i = 0; i < 5; ++i) {
    TraceEvent e;
    e.kind = "e";
    e.round = static_cast<std::uint64_t>(i);
    sink.emit(e);
  }
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.total(), 5u);
  EXPECT_EQ(sink.dropped(), 2u);

  std::vector<TraceEvent> got = sink.events();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].round, 2u);  // oldest retained
  EXPECT_EQ(got[1].round, 3u);
  EXPECT_EQ(got[2].round, 4u);

  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(RingBufferSink, RejectsZeroCapacity) {
  EXPECT_THROW(RingBufferSink(0), util::RequireError);
}

TEST(JsonlFileSink, WritesOneValidLinePerEvent) {
  std::string path = ::testing::TempDir() + "dimmer_trace_test.jsonl";
  {
    JsonlFileSink sink(path);
    for (int i = 0; i < 10; ++i) {
      TraceEvent e;
      e.kind = "round";
      e.round = static_cast<std::uint64_t>(i);
      e.f("reliability", 1.0 / (i + 1));
      sink.emit(e);
    }
    EXPECT_EQ(sink.lines(), 10u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonValidator::valid(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, 10);
  std::remove(path.c_str());
}

TEST(JsonlFileSink, ThrowsOnUnopenablePath) {
  EXPECT_THROW(JsonlFileSink("/nonexistent-dir-zzz/trace.jsonl"),
               util::RequireError);
}

TEST(JsonlFileSink, RejectsNullStream) {
  EXPECT_THROW(JsonlFileSink(nullptr, "null-stream"), util::RequireError);
}

TEST(JsonlFileSink, WriteFailureLatchesAndDropsInsteadOfThrowing) {
  auto stream = std::make_unique<std::ostringstream>();
  std::ostringstream* raw = stream.get();
  JsonlFileSink sink(std::move(stream), "test-stream");
  EXPECT_EQ(sink.path(), "test-stream");

  TraceEvent e;
  e.kind = "round";
  sink.emit(e);
  sink.emit(e);
  EXPECT_EQ(sink.lines(), 2u);
  EXPECT_FALSE(sink.failed());
  EXPECT_EQ(sink.dropped(), 0u);

  // Simulate disk-full / closed-pipe: every write from now on fails. The
  // sink must degrade, not throw — observability can't take the sim down.
  raw->setstate(std::ios::badbit);
  EXPECT_NO_THROW(sink.emit(e));
  EXPECT_TRUE(sink.failed());
  EXPECT_EQ(sink.dropped(), 1u);

  // The failure is latched: even if the stream recovers, the sink stays
  // quiet (a half-written line must remain the final output).
  raw->clear();
  EXPECT_NO_THROW(sink.emit(e));
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.lines(), 2u);

  // The two good lines are intact and valid.
  std::istringstream in(raw->str());
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonValidator::valid(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, 2);
}

TEST(TaggedSink, AppendsTagWithoutMutatingOriginal) {
  RingBufferSink ring(8);
  TaggedSink tagged(&ring, "scenario", "pid");
  TraceEvent e;
  e.kind = "round";
  tagged.emit(e);

  EXPECT_TRUE(e.tags.empty());  // original untouched
  std::vector<TraceEvent> got = ring.events();
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].tags.size(), 1u);
  EXPECT_EQ(got[0].tags[0].first, "scenario");
  EXPECT_EQ(got[0].tags[0].second, "pid");
}

TEST(TaggedSink, RejectsNullParent) {
  EXPECT_THROW(TaggedSink(nullptr, "k", "v"), util::RequireError);
}

TEST(Instrumentation, DefaultIsInactive) {
  Instrumentation instr;
  EXPECT_FALSE(instr.active());
  RingBufferSink ring(1);
  instr.trace = &ring;
  EXPECT_TRUE(instr.active());
}

}  // namespace
}  // namespace dimmer::obs
