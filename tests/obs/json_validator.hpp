// Minimal recursive-descent JSON validator for the obs tests: enough of
// RFC 8259 to verify that every emitted trace line / metrics blob parses,
// without pulling a JSON dependency into the repo.
#pragma once

#include <cctype>
#include <string>

namespace dimmer::test {

class JsonValidator {
 public:
  /// True iff `text` is exactly one valid JSON value (plus whitespace).
  static bool valid(const std::string& text) {
    JsonValidator v(text);
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(const std::string& t) : t_(t) {}

  const std::string& t_;
  std::size_t pos_ = 0;

  bool eof() const { return pos_ >= t_.size(); }
  char peek() const { return t_[pos_]; }
  bool eat(char c) {
    if (eof() || t_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }
  bool literal(const char* s) {
    std::size_t n = std::char_traits<char>::length(s);
    if (t_.compare(pos_, n, s) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (!eof()) {
      char c = t_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        char e = t_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (eof() || !std::isxdigit(static_cast<unsigned char>(t_[pos_++])))
              return false;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    std::size_t start = pos_;
    eat('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    if (!eat('0'))
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
};

}  // namespace dimmer::test
