// MetricsRegistry: counters, gauges, fixed-bucket histograms, and the
// spec-order merge the exp::Runner relies on for DIMMER_JOBS determinism.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace dimmer::obs {
namespace {

TEST(Histogram, BucketsPartitionTheRealLine) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("x", {1.0, 2.0, 5.0});
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + overflow

  h.add(0.5);   // <= 1.0
  h.add(1.0);   // <= 1.0 (bounds are inclusive upper edges)
  h.add(1.5);   // <= 2.0
  h.add(5.0);   // <= 5.0
  h.add(99.0);  // overflow

  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 1.5 + 5.0 + 99.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 99.0);
}

TEST(Histogram, MergeAddsBucketwise) {
  MetricsRegistry a, b;
  a.histogram("x", {1.0, 2.0}).add(0.5);
  b.histogram("x", {1.0, 2.0}).add(1.5);
  b.histogram("x", {1.0, 2.0}).add(10.0);

  a.merge(b);
  const Histogram& h = a.histograms().at("x");
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 10.0);
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  Histogram a, b;
  a.upper_bounds = {1.0};
  a.counts = {0, 0};
  b.upper_bounds = {2.0};
  b.counts = {1, 0};
  b.count = 1;
  EXPECT_THROW(a.merge(b), util::RequireError);
}

TEST(MetricsRegistry, CountersAndGaugesAreReferences) {
  MetricsRegistry reg;
  reg.counter("floods") += 3;
  reg.counter("floods") += 2;
  reg.gauge("epsilon") = 0.25;
  reg.gauge("epsilon") = 0.10;  // last write wins

  EXPECT_EQ(reg.counters().at("floods"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauges().at("epsilon"), 0.10);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, EmptyUntilFirstWrite) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("x");
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, HistogramBoundsValidated) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("no_bounds", {}), util::RequireError);
  EXPECT_THROW(reg.histogram("descending", {2.0, 1.0}), util::RequireError);
  EXPECT_THROW(reg.histogram("duplicate", {1.0, 1.0}), util::RequireError);

  reg.histogram("ok", {1.0, 2.0});
  // Re-registering with the same bounds, or with no bounds, is fine...
  reg.histogram("ok", {1.0, 2.0}).add(0.5);
  reg.histogram("ok", {}).add(1.5);
  // ...but different bounds are a bug.
  EXPECT_THROW(reg.histogram("ok", {3.0}), util::RequireError);
}

TEST(MetricsRegistry, MergeMatchesSequentialAccumulation) {
  // Simulates the runner: per-trial registries merged in spec order must
  // equal one registry that saw everything in the same order.
  MetricsRegistry t1, t2, sequential;
  t1.counter("rounds") += 10;
  t1.gauge("n_tx") = 3.0;
  t1.histogram("rel", {0.9, 0.99}).add(0.95);
  t2.counter("rounds") += 7;
  t2.gauge("n_tx") = 5.0;
  t2.histogram("rel", {0.9, 0.99}).add(1.0);

  sequential.counter("rounds") += 10;
  sequential.counter("rounds") += 7;
  sequential.gauge("n_tx") = 3.0;
  sequential.gauge("n_tx") = 5.0;
  sequential.histogram("rel", {0.9, 0.99}).add(0.95);
  sequential.histogram("rel", {0.9, 0.99}).add(1.0);

  MetricsRegistry merged;
  merged.merge(t1);
  merged.merge(t2);
  EXPECT_EQ(merged.to_json(), sequential.to_json());
}

TEST(MetricsRegistry, ToJsonIsDeterministicAndOrdered) {
  MetricsRegistry reg;
  reg.counter("zeta") += 1;
  reg.counter("alpha") += 2;
  reg.gauge("g") = 0.5;
  reg.histogram("h", {1.0}).add(2.0);

  std::string j = reg.to_json();
  // std::map ordering: alpha before zeta regardless of insertion order.
  EXPECT_LT(j.find("\"alpha\""), j.find("\"zeta\""));
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(j, reg.to_json());  // stable across calls

  MetricsRegistry empty;
  EXPECT_EQ(empty.to_json(), "{}");
}

}  // namespace
}  // namespace dimmer::obs
