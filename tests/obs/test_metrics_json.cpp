// obs::MetricsRegistry::from_json — journaled registries and checkpointed
// campaign counters must survive a process kill byte-identically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/json_parse.hpp"

using dimmer::obs::MetricsRegistry;

namespace {

MetricsRegistry sample_registry() {
  MetricsRegistry r;
  r.counter("flood.slots") = 12345678901234567ULL;  // > 2^53: no double trip
  r.counter("fault.orphaned_rounds") = 3;
  r.gauge("campaign.shards") = 4.0;
  r.gauge("rl.epsilon") = 1.0 / 3.0;
  auto& h = r.histogram("latency_ms", {1.0, 2.5, 10.0});
  h.add(0.5);
  h.add(2.0);
  h.add(99.0);
  return r;
}

}  // namespace

TEST(MetricsJson, RoundTripIsByteIdentical) {
  const MetricsRegistry r = sample_registry();
  const std::string text = r.to_json();
  const MetricsRegistry back = MetricsRegistry::from_json(text);
  EXPECT_EQ(back.to_json(), text);
  EXPECT_EQ(back.counters().at("flood.slots"), 12345678901234567ULL);
  EXPECT_DOUBLE_EQ(back.gauges().at("rl.epsilon"), 1.0 / 3.0);
  const auto& h = back.histograms().at("latency_ms");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.counts.size(), 4u);  // 3 finite buckets + overflow
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_DOUBLE_EQ(h.max, 99.0);
}

TEST(MetricsJson, EmptyRegistryRoundTrips) {
  const MetricsRegistry r;
  EXPECT_EQ(r.to_json(), "{}");
  EXPECT_TRUE(MetricsRegistry::from_json("{}").empty());
}

TEST(MetricsJson, MergeAfterRoundTripMatchesMergeBefore) {
  // Resume replays journaled registries and merges them in spec order; that
  // merge must equal the merge of the original in-memory registries.
  MetricsRegistry a = sample_registry();
  MetricsRegistry b = sample_registry();
  MetricsRegistry direct = sample_registry();
  direct.merge(b);

  MetricsRegistry replayed = MetricsRegistry::from_json(a.to_json());
  replayed.merge(MetricsRegistry::from_json(b.to_json()));
  EXPECT_EQ(replayed.to_json(), direct.to_json());
}

TEST(MetricsJson, MalformedInputThrows) {
  EXPECT_THROW(MetricsRegistry::from_json("[]"), dimmer::util::RequireError);
  EXPECT_THROW(MetricsRegistry::from_json("{\"counters\": {\"c\": -1}}"),
               dimmer::util::RequireError);
  EXPECT_THROW(MetricsRegistry::from_json("{\"counters\""),
               dimmer::util::json::JsonParseError);
}
