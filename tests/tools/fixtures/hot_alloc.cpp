// dimmer-lint fixture: hot-no-alloc — allocation inside a marked hot-path
// region. Never compiled; scanned by test_lint.cpp.
#include <memory>
#include <vector>

struct Workspace {
  std::vector<int> buf;
  std::vector<int> marks;
};

void prepare(Workspace& ws, int n) {
  ws.buf.reserve(static_cast<std::size_t>(n));  // outside region: ok
  ws.marks.assign(static_cast<std::size_t>(n), 0);
}

int hot_loop(Workspace& ws, int n) {
  int acc = 0;
  // dimmer-lint: hot-path begin
  for (int t = 0; t < n; ++t) {
    ws.buf.push_back(t);             // hot-no-alloc
    auto* p = new int(t);            // hot-no-alloc
    auto q = std::make_unique<int>(t);  // hot-no-alloc
    ws.marks.resize(static_cast<std::size_t>(n + t));  // hot-no-alloc
    // NOLINTNEXTLINE-DIMMER(hot-no-alloc): capacity reserved in prepare()
    ws.buf.push_back(-t);
    acc += *p + *q;
    delete p;
  }
  // dimmer-lint: hot-path end
  ws.buf.push_back(acc);  // after region: ok
  return acc;
}
