// dimmer-lint fixture: a hot-path region that never closes must itself be a
// finding (and the unclosed region flags nothing after it — the region is
// only materialized by its end marker). Never compiled.
#include <vector>

void f(std::vector<int>& v) {
  // dimmer-lint: hot-path begin
  v.push_back(1);
}
