// dimmer-lint fixture: nodiscard-result — result structs must carry
// [[nodiscard]]. Never compiled; scanned by test_lint.cpp.
#include <vector>

struct FloodResult {  // nodiscard-result
  std::vector<int> nodes;
};

struct [[nodiscard]] TrialResult {  // attribute present: ok
  double wall_seconds = 0.0;
};

struct RoundResult;  // forward declaration: ok

class [[nodiscard]] RoundResult2 {};  // not in the configured list either way

void use(const FloodResult& f, const TrialResult& t);
