// dimmer-lint fixture: err-swallow — catch-all and empty handlers. Never
// compiled; scanned by test_lint.cpp.
#include <stdexcept>

void risky();

int bad_catch_all() {
  try {
    risky();
  } catch (...) {  // err-swallow
    return -1;
  }
  return 0;
}

int bad_empty_catch() {
  try {
    risky();
  } catch (const std::exception& e) {  // err-swallow (empty body)
  }
  return 0;
}

int suppressed_catch_all() {
  try {
    risky();
  } catch (...) {  // NOLINT-DIMMER(err-swallow): recorded by caller, fixture
    return -1;
  }
  return 0;
}

int good_catch(int x) {
  try {
    risky();
  } catch (const std::exception& e) {
    x = -x;  // handled: ok
  }
  return x;
}
