// dimmer-lint fixture: det-umap-iter — nondeterministic traversal of
// unordered containers. Never compiled; scanned by test_lint.cpp.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using Index = std::unordered_map<int, double>;

struct Registry {
  std::unordered_map<std::string, double> metrics;
  std::unordered_set<int> seen;
  std::map<std::string, double> sorted_metrics;
};

double bad_range_for(const Registry& r) {
  double sum = 0.0;
  for (const auto& [k, v] : r.metrics) sum += v;  // det-umap-iter
  return sum;
}

int bad_alias_iteration(const Index& idx) {
  int n = 0;
  for (const auto& kv : idx) n += kv.first;  // det-umap-iter (via alias)
  return n;
}

int bad_begin(Registry& r) {
  auto it = r.seen.begin();  // det-umap-iter
  return it != r.seen.end() ? *it : 0;
}

double suppressed(const Registry& r) {
  double sum = 0.0;
  // NOLINTNEXTLINE-DIMMER(det-umap-iter): order-independent sum, proven
  for (const auto& [k, v] : r.metrics) sum += v;
  return sum;
}

// Ordered traversal and pure lookups must NOT fire.
double good(const Registry& r, const std::string& key) {
  double sum = 0.0;
  for (const auto& [k, v] : r.sorted_metrics) sum += v;  // std::map: ok
  auto it = r.metrics.find(key);                         // lookup: ok
  if (it != r.metrics.end()) sum += it->second;
  return sum + static_cast<double>(r.seen.count(3));     // count: ok
}
