// Fixture for the simd-fp-order rule: cross-lane SIMD reductions are only
// findings inside a hot-path region; annotated ones report as suppressed.
double reduce_add(double v);
double hadd(double v);
double horizontal_sum(double v);
double _mm512_reduce_add_pd(double v);

double outside(double v) {
  return reduce_add(v) + hadd(v);  // outside any region: clean
}

double hot(double v) {
  double acc = 0.0;
  // dimmer-lint: hot-path begin
  acc += reduce_add(v);
  acc += _mm512_reduce_add_pd(v);
  // dimmer-lint: simd-fp-order-ok — final fold, lane order documented
  acc += horizontal_sum(v);
  acc += hadd(v);  // dimmer-lint: simd-fp-order-ok
  // NOLINTNEXTLINE-DIMMER(simd-fp-order)
  acc += reduce_add(v);
  // dimmer-lint: hot-path end
  return acc;
}
