// dimmer-lint fixture: fp-accumulate — library reductions whose FP order is
// implicit. Never compiled; scanned by test_lint.cpp.
#include <numeric>
#include <vector>

double bad_sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);  // fp-accumulate
}

double bad_reduce(const std::vector<double>& v) {
  return std::reduce(v.begin(), v.end(), 0.0);  // fp-accumulate
}

double annotated_sum(const std::vector<double>& v) {
  // dimmer-lint: fp-order-ok — forward order is the documented contract here
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double suppressed_sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);  // NOLINT-DIMMER(fp-accumulate)
}

double good_explicit_sum(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;  // explicit order: ok
  return acc;
}
