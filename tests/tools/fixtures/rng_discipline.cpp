// rng-discipline fixture: member fork() calls must carry a hash_u64-keyed
// tag; the POSIX process fork() (no member access) is not the rule's
// business.
#include <cstdint>

struct Pcg32;
std::uint64_t hash_u64(std::uint64_t a, std::uint64_t b);

void forks(Pcg32& root, Pcg32* child, int i) {
  auto a = root.fork(static_cast<std::uint64_t>(i));
  auto b = root.fork(hash_u64(7u, static_cast<std::uint64_t>(i)));
  auto c = child->fork(i);  // NOLINT-DIMMER(rng-discipline)
  int pid = fork();
}
