// Virtual-dispatch widening fixture: the hot region calls through the base
// interface; name resolution conservatively reaches the allocating override.
#include <vector>

struct Sink {
  virtual ~Sink() = default;
  virtual void step(std::vector<int>& v) = 0;
};

struct GrowingSink final : Sink {
  void step(std::vector<int>& v) override { v.push_back(1); }
};

void drive(Sink& s, std::vector<int>& v) {
  // dimmer-lint: hot-path begin
  s.step(v);
  // dimmer-lint: hot-path end
}
