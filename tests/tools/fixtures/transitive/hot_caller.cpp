// The hot region that reaches each two-hop chain. Scanned (pass 2) with a
// call graph built over the transitive/ fixtures; every chain head fires the
// matching transitive rule here with the full chain in the message.
#include <unordered_map>
#include <vector>

struct Pcg32;

void hot_caller(std::vector<int>& v,
                const std::unordered_map<int, int>& m, Pcg32& rng) {
  // dimmer-lint: hot-path begin
  alloc_mid(v);
  clock_mid();
  umap_mid(m);
  rng_mid(rng);
  // dimmer-lint: hot-path end
}
