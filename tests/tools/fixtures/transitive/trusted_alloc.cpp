// pure() trust fixture: the two-hop allocation chain is cut at the mid
// function, so the hot region below stays clean — and the annotation itself
// is reported as a suppressed finding at the definition, never hidden.
#include <vector>

void t_alloc_leaf(std::vector<int>& v) { v.push_back(1); }

// dimmer-lint: pure(may-allocate)
void t_alloc_mid(std::vector<int>& v) { t_alloc_leaf(v); }

void t_hot(std::vector<int>& v) {
  // dimmer-lint: hot-path begin
  t_alloc_mid(v);
  // dimmer-lint: hot-path end
}
