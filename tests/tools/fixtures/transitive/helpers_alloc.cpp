// Cross-TU transitive fixture: the allocation lives two hops below the
// chain head. Indexed (never compiled) by the pass-1 tests.
#include <vector>

void alloc_leaf(std::vector<int>& v) { v.push_back(1); }

void alloc_mid(std::vector<int>& v) { alloc_leaf(v); }
