// Cross-TU transitive fixture: the wall-clock read lives two hops below the
// chain head.
#include <chrono>

double clock_leaf() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double clock_mid() { return clock_leaf(); }
