// Cross-TU transitive fixture: the protocol RNG draw lives two hops below
// the chain head. may-draw-rng must propagate in the index but must NOT fire
// the transitive hot-path rules (floods draw protocol randomness by design).
struct Pcg32;

double rng_leaf(Pcg32& rng) { return rng.uniform(); }

double rng_mid(Pcg32& rng) { return rng_leaf(rng); }
