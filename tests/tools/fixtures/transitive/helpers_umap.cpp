// Cross-TU transitive fixture: the unordered-container traversal lives two
// hops below the chain head.
#include <unordered_map>

int umap_leaf(const std::unordered_map<int, int>& m) {
  int s = 0;
  for (const auto& kv : m) s += kv.second;
  return s;
}

int umap_mid(const std::unordered_map<int, int>& m) { return umap_leaf(m); }
