// dimmer-lint fixture: det-clock must fire on every ambient time/randomness
// source — and honour suppressions. Never compiled; scanned by
// tests/tools/test_lint.cpp.
#include <chrono>
#include <cstdlib>
#include <random>

double wall() {
  auto t0 = std::chrono::steady_clock::now();  // line 9: det-clock
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

long stamp() { return std::time(nullptr); }  // line 13: det-clock

int ambient() {
  std::random_device rd;                  // line 16: det-clock
  std::mt19937 gen(rd());                 // line 17: det-clock
  return static_cast<int>(gen() % 7) + std::rand();  // line 18: det-clock
}

void naps() {
  std::this_thread::sleep_for(std::chrono::milliseconds(3));  // line 22: det-clock
  usleep(250);  // line 23: det-clock
  ::sleep(1);   // line 24: det-clock
}

int suppressed_ambient() {
  return std::rand();  // NOLINT-DIMMER(det-clock): fixture-sanctioned
}

int suppressed_next_line() {
  // NOLINTNEXTLINE-DIMMER(det-clock)
  std::mt19937 gen(7);
  return static_cast<int>(gen());
}

// Lookalikes that must NOT fire: member access, other identifiers, strings
// and comments. A comment mentioning std::rand or steady_clock is fine.
struct Radio {
  double airtime(int bytes) const { return bytes * 32.0; }
  long time_us = 0;
  int rand = 3;  // a field named rand is not a call
};
double lookalikes(const Radio& r) {
  const char* msg = "do not use std::rand or steady_clock";  // string, ok
  return r.airtime(30) + static_cast<double>(r.time_us) + r.rand +
         static_cast<double>(msg[0]);
}
