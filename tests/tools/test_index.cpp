// Tests for tools/dimmer-lint pass 1 (index.hpp): the brace/paren-aware
// function extractor, the fixpoint propagation of the four transitive
// properties through the cross-TU call graph (including virtual-dispatch and
// function-pointer widening), the pure() trust annotation, and the
// deterministic serialize/parse cache round-trip. The fixture-backed tests at
// the bottom prove each property fires — and suppresses — through 2+-deep
// call chains exactly as the hot-path rules report them.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

using dimmer::lint::build_call_graph;
using dimmer::lint::CallGraph;
using dimmer::lint::FileIndex;
using dimmer::lint::Finding;
using dimmer::lint::FunctionDef;
using dimmer::lint::index_source;
using dimmer::lint::Options;
using dimmer::lint::Prop;

namespace {

std::string fixture_path(const std::string& name) {
  return std::string(DIMMER_LINT_FIXTURE_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const FunctionDef* find_fn(const FileIndex& fi, const std::string& name) {
  for (const auto& f : fi.functions)
    if (f.name == name) return &f;
  return nullptr;
}

int node_of(const CallGraph& g, const std::string& name) {
  const std::vector<int>* ids = g.lookup(name);
  return (ids == nullptr || ids->empty()) ? -1 : ids->front();
}

// Builds a graph over the transitive/ fixtures, reported under stable
// relative paths (the same shape the CLI produces).
struct TransitiveFixtures {
  std::vector<std::pair<std::string, std::string>> sources;  // (rel, contents)
  CallGraph graph;

  TransitiveFixtures() {
    const char* names[] = {
        "transitive/helpers_alloc.cpp", "transitive/helpers_clock.cpp",
        "transitive/helpers_umap.cpp",  "transitive/helpers_rng.cpp",
        "transitive/hot_caller.cpp",    "transitive/trusted_alloc.cpp",
        "transitive/virtual_widen.cpp"};
    std::vector<FileIndex> idx;
    for (const char* n : names) {
      std::string contents = slurp(fixture_path(n));
      std::string rel = std::string("fixtures/") + n;
      idx.push_back(index_source(rel, contents));
      sources.emplace_back(rel, std::move(contents));
    }
    graph = build_call_graph(std::move(idx));
  }

  std::vector<Finding> scan(const std::string& rel) const {
    for (const auto& [path, contents] : sources)
      if (path == rel)
        return dimmer::lint::scan_source(path, contents, Options(), &graph);
    ADD_FAILURE() << "no such fixture source: " << rel;
    return {};
  }
};

std::vector<int> lines_of(const std::vector<Finding>& fs,
                          const std::string& rule, bool suppressed) {
  std::vector<int> lines;
  for (const auto& f : fs)
    if (f.rule == rule && f.suppressed == suppressed) lines.push_back(f.line);
  return lines;
}

}  // namespace

// ---------------------------------------------------------------------------
// Extractor
// ---------------------------------------------------------------------------

TEST(LintIndex, ExtractorFindsFunctionsScopesAndBodies) {
  const std::string src =
      "namespace outer {\n"
      "class Widget {\n"
      " public:\n"
      "  int area() const {\n"
      "    return w_ * h_;\n"
      "  }\n"
      " private:\n"
      "  int w_ = 0, h_ = 0;\n"
      "};\n"
      "int free_fn(int x) { return x + 1; }\n"
      "}  // namespace outer\n";
  FileIndex fi = index_source("t.cpp", src);
  ASSERT_EQ(fi.functions.size(), 2u);
  const FunctionDef* area = find_fn(fi, "area");
  ASSERT_NE(area, nullptr);
  EXPECT_EQ(area->scope, "outer::Widget");
  EXPECT_EQ(area->line, 4);
  EXPECT_EQ(area->body_begin, 4);
  EXPECT_EQ(area->body_end, 6);
  const FunctionDef* free_fn = find_fn(fi, "free_fn");
  ASSERT_NE(free_fn, nullptr);
  EXPECT_EQ(free_fn->scope, "outer");
  EXPECT_EQ(free_fn->line, 10);
}

TEST(LintIndex, ExtractorSkipsDeclarationsAndControlFlow) {
  const std::string src =
      "void decl_only(int);\n"
      "template <typename T>\n"
      "int real(T t) {\n"
      "  if (t > 0) { return 1; }\n"
      "  for (int i = 0; i < 3; ++i) { t += i; }\n"
      "  while (t < 0) { ++t; }\n"
      "  if constexpr (sizeof(T) > 4) { return 2; }\n"
      "  switch (t) { default: break; }\n"
      "  return 0;\n"
      "}\n";
  FileIndex fi = index_source("t.cpp", src);
  ASSERT_EQ(fi.functions.size(), 1u);
  EXPECT_EQ(fi.functions[0].name, "real");
}

TEST(LintIndex, ExtractorRecordsDirectEvidencePerProperty) {
  const std::string src =
      "void a(std::vector<int>& v) { v.push_back(1); }\n"
      "double c() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n"
      "int u(const std::unordered_map<int, int>& m) {\n"
      "  int s = 0;\n"
      "  for (const auto& kv : m) s += kv.second;\n"
      "  return s;\n"
      "}\n"
      "double r(Pcg32& rng) { return rng.uniform(); }\n";
  FileIndex fi = index_source("t.cpp", src);
  ASSERT_EQ(fi.functions.size(), 4u);
  auto ev = [&](const char* fn, Prop p) {
    const FunctionDef* d = find_fn(fi, fn);
    return d == nullptr ? dimmer::lint::DirectEvidence{}
                        : d->direct[static_cast<int>(p)];
  };
  EXPECT_EQ(ev("a", Prop::kAllocate).line, 1);
  EXPECT_EQ(ev("a", Prop::kAllocate).token, "push_back");
  EXPECT_EQ(ev("c", Prop::kClock).line, 2);
  EXPECT_EQ(ev("c", Prop::kClock).token, "steady_clock");
  EXPECT_EQ(ev("u", Prop::kUnorderedIter).line, 5);
  EXPECT_EQ(ev("r", Prop::kDrawRng).line, 8);
  EXPECT_EQ(ev("r", Prop::kDrawRng).token, "uniform");
  // No cross-talk: the clock function has no allocation evidence, etc.
  EXPECT_EQ(ev("c", Prop::kAllocate).line, 0);
  EXPECT_EQ(ev("a", Prop::kClock).line, 0);
}

TEST(LintIndex, ExtractorParsesPureAnnotationsAndPcgParams) {
  const std::string src =
      "// dimmer-lint: pure(may-allocate, may-touch-clock)\n"
      "void trusted(std::vector<int>& v) { v.push_back(1); }\n"
      "void takes(Pcg32& rng, const Pcg32* aux) {}\n"
      "void plain(int x) {}\n";
  FileIndex fi = index_source("t.cpp", src);
  const FunctionDef* t = find_fn(fi, "trusted");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->trusted[static_cast<int>(Prop::kAllocate)]);
  EXPECT_TRUE(t->trusted[static_cast<int>(Prop::kClock)]);
  EXPECT_FALSE(t->trusted[static_cast<int>(Prop::kUnorderedIter)]);
  const FunctionDef* k = find_fn(fi, "takes");
  ASSERT_NE(k, nullptr);
  EXPECT_TRUE(k->takes_pcg);
  EXPECT_EQ(k->pcg_params, (std::vector<std::string>{"rng", "aux"}));
  const FunctionDef* p = find_fn(fi, "plain");
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->takes_pcg);
  for (bool b : p->trusted) EXPECT_FALSE(b);
}

TEST(LintIndex, ExtractorRecordsCallsDedupedAndRefs) {
  const std::string src =
      "void caller() {\n"
      "  helper();\n"
      "  helper();\n"
      "  other(1);\n"
      "  install(&callback);\n"
      "  auto fp = handler;\n"
      "}\n";
  FileIndex fi = index_source("t.cpp", src);
  const FunctionDef* c = find_fn(fi, "caller");
  ASSERT_NE(c, nullptr);
  std::vector<std::string> call_names;
  for (const auto& [name, line] : c->calls) call_names.push_back(name);
  // helper deduped to one entry; install is itself a call.
  EXPECT_EQ(std::count(call_names.begin(), call_names.end(), "helper"), 1);
  EXPECT_NE(std::find(call_names.begin(), call_names.end(), "other"),
            call_names.end());
  std::vector<std::string> ref_names;
  for (const auto& [name, line] : c->refs) ref_names.push_back(name);
  EXPECT_NE(std::find(ref_names.begin(), ref_names.end(), "callback"),
            ref_names.end());
  EXPECT_NE(std::find(ref_names.begin(), ref_names.end(), "handler"),
            ref_names.end());
}

// ---------------------------------------------------------------------------
// Fixpoint propagation
// ---------------------------------------------------------------------------

TEST(LintIndex, FixpointPropagatesThroughThreeHopChain) {
  const std::string src =
      "void leaf(std::vector<int>& v) { v.push_back(1); }\n"
      "void mid(std::vector<int>& v) { leaf(v); }\n"
      "void top(std::vector<int>& v) { mid(v); }\n";
  CallGraph g = build_call_graph({index_source("t.cpp", src)});
  int top = node_of(g, "top");
  ASSERT_GE(top, 0);
  EXPECT_TRUE(g.has(top, Prop::kAllocate));
  EXPECT_FALSE(g.has(top, Prop::kClock));
  EXPECT_EQ(g.chain(top, Prop::kAllocate),
            "top -> mid -> leaf (`push_back` at t.cpp:1)");
}

TEST(LintIndex, TrustCutsPropagationButStaysVisibleAsRawHas) {
  const std::string src =
      "void leaf(std::vector<int>& v) { v.push_back(1); }\n"
      "// dimmer-lint: pure(may-allocate)\n"
      "void mid(std::vector<int>& v) { leaf(v); }\n"
      "void top(std::vector<int>& v) { mid(v); }\n";
  CallGraph g = build_call_graph({index_source("t.cpp", src)});
  int mid = node_of(g, "mid");
  int top = node_of(g, "top");
  ASSERT_GE(mid, 0);
  ASSERT_GE(top, 0);
  // The annotation masks a real propagated property (raw_has) but stops it
  // escaping to callers (has).
  EXPECT_TRUE(g.raw_has(mid, Prop::kAllocate));
  EXPECT_FALSE(g.has(mid, Prop::kAllocate));
  EXPECT_FALSE(g.raw_has(top, Prop::kAllocate));
}

TEST(LintIndex, RefEdgesWidenFunctionPointers) {
  const std::string src =
      "void sink(std::vector<int>& v) { v.push_back(1); }\n"
      "void installer() { enqueue(&sink); }\n";
  CallGraph g = build_call_graph({index_source("t.cpp", src)});
  int inst = node_of(g, "installer");
  ASSERT_GE(inst, 0);
  EXPECT_TRUE(g.has(inst, Prop::kAllocate));
  // Ref edges render as ~> so a chain shows *how* the property traveled.
  EXPECT_EQ(g.chain(inst, Prop::kAllocate),
            "installer ~> sink (`push_back` at t.cpp:1)");
}

TEST(LintIndex, RecursionReachesFixpointWithoutHanging) {
  const std::string src =
      "void ping(std::vector<int>& v) { pong(v); }\n"
      "void pong(std::vector<int>& v) { ping(v); v.push_back(1); }\n";
  CallGraph g = build_call_graph({index_source("t.cpp", src)});
  int ping = node_of(g, "ping");
  ASSERT_GE(ping, 0);
  EXPECT_TRUE(g.has(ping, Prop::kAllocate));
  // The chain terminates at direct evidence even through the cycle.
  std::string chain = g.chain(ping, Prop::kAllocate);
  EXPECT_NE(chain.find("`push_back` at t.cpp:2"), std::string::npos) << chain;
}

// ---------------------------------------------------------------------------
// Cache round-trip
// ---------------------------------------------------------------------------

TEST(LintIndex, SerializeParseRoundTripIsLossless) {
  std::vector<FileIndex> idx;
  idx.push_back(index_source("fixtures/transitive/helpers_alloc.cpp",
                             slurp(fixture_path("transitive/helpers_alloc.cpp"))));
  idx.push_back(index_source("fixtures/transitive/virtual_widen.cpp",
                             slurp(fixture_path("transitive/virtual_widen.cpp"))));
  idx.push_back(index_source("fixtures/transitive/trusted_alloc.cpp",
                             slurp(fixture_path("transitive/trusted_alloc.cpp"))));
  const std::string text = dimmer::lint::serialize_index(idx);
  EXPECT_EQ(text.rfind("dimmer-lint-index v2\n", 0), 0u) << text.substr(0, 40);
  std::vector<FileIndex> parsed;
  ASSERT_TRUE(dimmer::lint::parse_index(text, &parsed));
  EXPECT_EQ(dimmer::lint::serialize_index(parsed), text);
}

TEST(LintIndex, ParseRejectsGarbageAndForeignVersions) {
  std::vector<FileIndex> out;
  EXPECT_FALSE(dimmer::lint::parse_index("", &out));
  EXPECT_FALSE(dimmer::lint::parse_index("not an index\n", &out));
  EXPECT_FALSE(dimmer::lint::parse_index("dimmer-lint-index v1\n", &out));
  // Truncation inside a record is malformed, not silently accepted.
  std::vector<FileIndex> idx = {
      index_source("a.cpp", "void f() { g(); }\n")};
  std::string text = dimmer::lint::serialize_index(idx);
  EXPECT_FALSE(dimmer::lint::parse_index(
      text.substr(0, text.size() / 2), &out));
}

TEST(LintIndex, IndexOrReuseHonoursContentHash) {
  const std::string contents = "void f() { g(); }\n";
  FileIndex fresh = index_source("a.cpp", contents);
  // Matching hash: the cached entry is trusted verbatim (proven by a
  // sentinel mutation that re-extraction would erase).
  FileIndex cached = fresh;
  cached.functions[0].name = "sentinel";
  FileIndex reused = dimmer::lint::index_or_reuse("a.cpp", contents, &cached);
  ASSERT_EQ(reused.functions.size(), 1u);
  EXPECT_EQ(reused.functions[0].name, "sentinel");
  // Hash mismatch (edited file): re-extracted, sentinel gone.
  FileIndex stale = cached;
  stale.hash ^= 1;
  FileIndex reextracted =
      dimmer::lint::index_or_reuse("a.cpp", contents, &stale);
  ASSERT_EQ(reextracted.functions.size(), 1u);
  EXPECT_EQ(reextracted.functions[0].name, "f");
}

// ---------------------------------------------------------------------------
// Transitive rules over the fixture tree: every property fires through a
// 2-deep cross-TU chain, pure() suppresses (visibly), virtual dispatch
// widens, and may-draw-rng deliberately does NOT fire hot-path rules.
// ---------------------------------------------------------------------------

TEST(LintTransitive, HotRegionReachesEachPropertyThroughTwoHopChains) {
  TransitiveFixtures fx;
  auto fs = fx.scan("fixtures/transitive/hot_caller.cpp");
  EXPECT_EQ(lines_of(fs, "hot-no-alloc", false), (std::vector<int>{12}));
  EXPECT_EQ(lines_of(fs, "det-clock", false), (std::vector<int>{13}));
  EXPECT_EQ(lines_of(fs, "det-umap-iter", false), (std::vector<int>{14}));
  // may-draw-rng propagates in the graph but is not a hot-path violation:
  // floods draw protocol randomness by design.
  EXPECT_EQ(lines_of(fs, "rng-discipline", false), (std::vector<int>{}));
  for (const auto& f : fs) EXPECT_NE(f.line, 15) << f.rule << ": " << f.message;
  // The finding names the full chain down to the direct evidence.
  for (const auto& f : fs) {
    if (f.rule != "hot-no-alloc") continue;
    EXPECT_NE(
        f.message.find(
            "alloc_mid -> alloc_leaf (`push_back` at "
            "fixtures/transitive/helpers_alloc.cpp:5)"),
        std::string::npos)
        << f.message;
  }
}

TEST(LintTransitive, RngPropertyStillPropagatesInTheGraph) {
  TransitiveFixtures fx;
  int mid = node_of(fx.graph, "rng_mid");
  ASSERT_GE(mid, 0);
  EXPECT_TRUE(fx.graph.has(mid, Prop::kDrawRng));
  EXPECT_EQ(fx.graph.chain(mid, Prop::kDrawRng),
            "rng_mid -> rng_leaf (`uniform` at "
            "fixtures/transitive/helpers_rng.cpp:6)");
}

TEST(LintTransitive, PureAnnotationSuppressesTwoHopChainVisibly) {
  TransitiveFixtures fx;
  auto fs = fx.scan("fixtures/transitive/trusted_alloc.cpp");
  // The hot region is clean: t_alloc_mid's pure(may-allocate) cut the chain.
  EXPECT_EQ(lines_of(fs, "hot-no-alloc", false), (std::vector<int>{}));
  // But the sanction itself is reported — suppressed — at the definition.
  auto suppressed = lines_of(fs, "hot-no-alloc", true);
  ASSERT_EQ(suppressed, (std::vector<int>{9}));
  for (const auto& f : fs) {
    if (f.line != 9 || f.rule != "hot-no-alloc") continue;
    EXPECT_NE(f.message.find("`pure(may-allocate)` trust annotation"),
              std::string::npos)
        << f.message;
    EXPECT_NE(f.message.find("t_alloc_mid -> t_alloc_leaf"),
              std::string::npos)
        << f.message;
  }
}

TEST(LintTransitive, VirtualDispatchWidensToTheAllocatingOverride) {
  TransitiveFixtures fx;
  // The override is flagged virtual in the index.
  int step = node_of(fx.graph, "step");
  ASSERT_GE(step, 0);
  EXPECT_TRUE(
      fx.graph.nodes()[static_cast<std::size_t>(step)].def.is_virtual);
  // Calling through the Sink base reaches GrowingSink::step by name.
  auto fs = fx.scan("fixtures/transitive/virtual_widen.cpp");
  EXPECT_EQ(lines_of(fs, "hot-no-alloc", false), (std::vector<int>{16}));
  for (const auto& f : fs) {
    if (f.rule != "hot-no-alloc" || f.suppressed) continue;
    EXPECT_NE(f.message.find("GrowingSink::step"), std::string::npos)
        << f.message;
  }
}
