// Tests for tools/dimmer-lint: every rule proven to fire on a fixture and to
// honour its suppression mechanism, the JSON report pinned against a golden
// file, the shipped baseline proven empty, and — the point of the tool — the
// real src/, bench/ and examples/ trees proven clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using dimmer::lint::Finding;
using dimmer::lint::Options;

namespace {

std::string fixture_path(const std::string& name) {
  return std::string(DIMMER_LINT_FIXTURE_DIR) + "/" + name;
}

// Scans a fixture, reporting it under a stable relative path so findings are
// machine-independent.
std::vector<Finding> scan_fixture(const std::string& name) {
  return dimmer::lint::scan_file(fixture_path(name), "fixtures/" + name);
}

// Findings for `rule` with the given flags.
std::vector<int> lines_of(const std::vector<Finding>& fs, const std::string& rule,
                          bool suppressed) {
  std::vector<int> lines;
  for (const auto& f : fs)
    if (f.rule == rule && f.suppressed == suppressed) lines.push_back(f.line);
  return lines;
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

TEST(LintRules, TableListsAllSevenRules) {
  std::vector<std::string> ids;
  for (const auto& r : dimmer::lint::rules()) ids.push_back(r.id);
  const std::vector<std::string> expected = {"det-clock",  "det-umap-iter",
                                             "hot-no-alloc", "fp-accumulate",
                                             "err-swallow", "nodiscard-result",
                                             "simd-fp-order"};
  EXPECT_EQ(ids, expected);
  for (const auto& id : expected) EXPECT_TRUE(dimmer::lint::is_rule(id)) << id;
  EXPECT_FALSE(dimmer::lint::is_rule("no-such-rule"));
}

// ---------------------------------------------------------------------------
// det-clock
// ---------------------------------------------------------------------------

TEST(LintDetClock, FiresOnEveryAmbientSource) {
  auto fs = scan_fixture("clock_violation.cpp");
  // steady_clock, time, random_device, mt19937, rand, sleep_for, usleep,
  // sleep — 8 active findings.
  auto active = lines_of(fs, "det-clock", /*suppressed=*/false);
  EXPECT_EQ(active, (std::vector<int>{9, 13, 16, 17, 18, 22, 23, 24}));
}

TEST(LintDetClock, HonoursSameLineAndNextLineSuppression) {
  auto fs = scan_fixture("clock_violation.cpp");
  auto suppressed = lines_of(fs, "det-clock", /*suppressed=*/true);
  EXPECT_EQ(suppressed, (std::vector<int>{28, 33}));
  EXPECT_TRUE(dimmer::lint::has_active(fs));
}

TEST(LintDetClock, IgnoresMembersStringsAndComments) {
  auto fs = scan_fixture("clock_violation.cpp");
  // Nothing past the suppressed block (the lookalikes section) may fire.
  for (const auto& f : fs) EXPECT_LE(f.line, 33) << f.excerpt;
}

TEST(LintDetClock, ExemptsUtilAndToolsPrefixes) {
  const std::string src = slurp(fixture_path("clock_violation.cpp"));
  EXPECT_FALSE(src.empty());
  // The same content reported under src/util/ produces zero det-clock
  // findings: the wall-clock wrapper lives there by design.
  auto util_fs = dimmer::lint::scan_source("src/util/wallclock_fixture.cpp", src);
  EXPECT_EQ(count_rule(util_fs, "det-clock"), 0);
  auto tools_fs = dimmer::lint::scan_source("tools/dimmer-lint/fixture.cpp", src);
  EXPECT_EQ(count_rule(tools_fs, "det-clock"), 0);
}

// ---------------------------------------------------------------------------
// det-umap-iter
// ---------------------------------------------------------------------------

TEST(LintUmapIter, FiresOnRangeForBeginAndAliases) {
  auto fs = scan_fixture("umap_iter.cpp");
  auto active = lines_of(fs, "det-umap-iter", /*suppressed=*/false);
  // range-for over member, range-for over alias, begin() on unordered_set.
  EXPECT_EQ(active, (std::vector<int>{19, 25, 30}));
}

TEST(LintUmapIter, SuppressionAndOrderedContainersClean) {
  auto fs = scan_fixture("umap_iter.cpp");
  auto suppressed = lines_of(fs, "det-umap-iter", /*suppressed=*/true);
  EXPECT_EQ(suppressed, (std::vector<int>{37}));
  // std::map traversal and find()/count() lookups (lines 41+) are clean.
  for (const auto& f : fs) EXPECT_LE(f.line, 37) << f.excerpt;
}

// ---------------------------------------------------------------------------
// hot-no-alloc
// ---------------------------------------------------------------------------

TEST(LintHotNoAlloc, FiresOnlyInsideMarkedRegion) {
  auto fs = scan_fixture("hot_alloc.cpp");
  auto active = lines_of(fs, "hot-no-alloc", /*suppressed=*/false);
  // push_back, new, make_unique, resize — all inside the region. reserve/
  // assign in prepare() and the push_back after `hot-path end` are clean.
  EXPECT_EQ(active, (std::vector<int>{20, 21, 22, 23}));
  auto suppressed = lines_of(fs, "hot-no-alloc", /*suppressed=*/true);
  EXPECT_EQ(suppressed, (std::vector<int>{25}));
}

TEST(LintHotNoAlloc, UnterminatedRegionIsItselfAFinding) {
  auto fs = scan_fixture("hot_unterminated.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot-no-alloc");
  EXPECT_FALSE(fs[0].suppressed);
  EXPECT_NE(fs[0].message.find("unterminated"), std::string::npos)
      << fs[0].message;
}

// ---------------------------------------------------------------------------
// fp-accumulate
// ---------------------------------------------------------------------------

TEST(LintFpAccumulate, FiresOnLibraryReductions) {
  auto fs = scan_fixture("fp_accumulate.cpp");
  auto active = lines_of(fs, "fp-accumulate", /*suppressed=*/false);
  EXPECT_EQ(active, (std::vector<int>{7, 11}));
}

TEST(LintFpAccumulate, FpOrderOkAnnotationAndNolintSuppress) {
  auto fs = scan_fixture("fp_accumulate.cpp");
  auto suppressed = lines_of(fs, "fp-accumulate", /*suppressed=*/true);
  // The fp-order-ok annotated call (line 16) and the NOLINT one (line 20).
  EXPECT_EQ(suppressed, (std::vector<int>{16, 20}));
  // The explicit loop at the bottom is invisible to the rule.
  EXPECT_EQ(count_rule(fs, "fp-accumulate"), 4);
}

// ---------------------------------------------------------------------------
// simd-fp-order
// ---------------------------------------------------------------------------

TEST(LintSimdFpOrder, FiresOnlyInsideHotRegions) {
  auto fs = scan_fixture("simd_fp_order.cpp");
  auto active = lines_of(fs, "simd-fp-order", /*suppressed=*/false);
  // reduce_add and the _mm512 intrinsic inside the region; the calls before
  // `hot-path begin` are clean.
  EXPECT_EQ(active, (std::vector<int>{15, 16}));
}

TEST(LintSimdFpOrder, AnnotationAndNolintReportAsSuppressed) {
  auto fs = scan_fixture("simd_fp_order.cpp");
  auto suppressed = lines_of(fs, "simd-fp-order", /*suppressed=*/true);
  // previous-line and same-line `simd-fp-order-ok`, plus a NOLINTNEXTLINE.
  EXPECT_EQ(suppressed, (std::vector<int>{18, 19, 21}));
  EXPECT_EQ(count_rule(fs, "simd-fp-order"), 5);
}

// ---------------------------------------------------------------------------
// err-swallow
// ---------------------------------------------------------------------------

TEST(LintErrSwallow, FiresOnCatchAllAndEmptyCatch) {
  auto fs = scan_fixture("err_swallow.cpp");
  auto active = lines_of(fs, "err-swallow", /*suppressed=*/false);
  EXPECT_EQ(active, (std::vector<int>{10, 19}));
  auto suppressed = lines_of(fs, "err-swallow", /*suppressed=*/true);
  EXPECT_EQ(suppressed, (std::vector<int>{27}));
}

// ---------------------------------------------------------------------------
// nodiscard-result
// ---------------------------------------------------------------------------

TEST(LintNodiscard, FiresOnUnattributedResultStructOnly) {
  auto fs = scan_fixture("nodiscard.cpp");
  auto active = lines_of(fs, "nodiscard-result", /*suppressed=*/false);
  // FloodResult without [[nodiscard]]; TrialResult (attributed), the
  // RoundResult forward declaration and RoundResult2 (not a listed type)
  // are all clean.
  EXPECT_EQ(active, (std::vector<int>{5}));
  EXPECT_EQ(count_rule(fs, "nodiscard-result"), 1);
}

// ---------------------------------------------------------------------------
// Suppression semantics
// ---------------------------------------------------------------------------

TEST(LintSuppression, BareNolintSuppressesEveryRule) {
  auto fs = dimmer::lint::scan_source(
      "fixtures/inline.cpp",
      "int f() { return std::rand(); }  // NOLINT-DIMMER\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);
  EXPECT_FALSE(dimmer::lint::has_active(fs));
}

TEST(LintSuppression, UnrelatedRuleListDoesNotSuppress) {
  auto fs = dimmer::lint::scan_source(
      "fixtures/inline.cpp",
      "int f() { return std::rand(); }  // NOLINT-DIMMER(err-swallow)\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_FALSE(fs[0].suppressed);
  EXPECT_TRUE(dimmer::lint::has_active(fs));
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(LintBaseline, KeyIsContentHashedNotLineNumbered) {
  const std::string a = "int f() { return std::rand(); }\n";
  const std::string b = "// a new comment shifts every line\n\n\n" + a;
  auto fa = dimmer::lint::scan_source("x.cpp", a);
  auto fb = dimmer::lint::scan_source("x.cpp", b);
  ASSERT_EQ(fa.size(), 1u);
  ASSERT_EQ(fb.size(), 1u);
  EXPECT_NE(fa[0].line, fb[0].line);
  EXPECT_EQ(dimmer::lint::baseline_key(fa[0]), dimmer::lint::baseline_key(fb[0]));
}

TEST(LintBaseline, ApplyMarksMatchingFindingsInactive) {
  auto fs = dimmer::lint::scan_source("x.cpp",
                                      "int f() { return std::rand(); }\n");
  ASSERT_EQ(fs.size(), 1u);
  std::set<std::string> baseline = {dimmer::lint::baseline_key(fs[0])};
  dimmer::lint::apply_baseline(fs, baseline);
  EXPECT_TRUE(fs[0].baselined);
  EXPECT_FALSE(dimmer::lint::has_active(fs));
}

TEST(LintBaseline, ShippedBaselineIsEmpty) {
  // The contract: the repo lints clean, so the checked-in baseline carries
  // zero keys. Grandfathering a violation requires a visible diff here.
  auto keys = dimmer::lint::load_baseline(DIMMER_LINT_BASELINE_FILE);
  EXPECT_TRUE(keys.empty())
      << "baseline.txt must stay empty; fix or NOLINT new findings instead";
}

TEST(LintBaseline, MissingFileYieldsEmptySet) {
  EXPECT_TRUE(dimmer::lint::load_baseline("/nonexistent/baseline").empty());
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

TEST(LintReport, MatchesGoldenFile) {
  auto fs = scan_fixture("clock_violation.cpp");
  const std::string got = dimmer::lint::json_report(std::move(fs));
  const std::string want = slurp(fixture_path("golden_clock_report.json"));
  ASSERT_FALSE(want.empty()) << "golden file missing";
  EXPECT_EQ(got, want);
}

TEST(LintReport, IsByteDeterministic) {
  auto a = dimmer::lint::json_report(scan_fixture("umap_iter.cpp"));
  auto b = dimmer::lint::json_report(scan_fixture("umap_iter.cpp"));
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// The repo itself is clean (the static mirror of the jobs=1-vs-8 BENCH
// byte-identity checks). Scans the real src/, bench/ and examples/ trees.
// ---------------------------------------------------------------------------

TEST(LintRepo, SrcBenchExamplesHaveNoActiveFindings) {
  const fs::path root = DIMMER_LINT_REPO_ROOT;
  std::vector<std::string> files;
  for (const char* dir : {"src", "bench", "examples"}) {
    for (auto it = fs::recursive_directory_iterator(root / dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      auto ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h")
        files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 50u);  // sanity: we really walked the tree
  auto baseline = dimmer::lint::load_baseline(DIMMER_LINT_BASELINE_FILE);
  int active = 0;
  for (const auto& f : files) {
    auto rel = fs::relative(f, root).generic_string();
    auto found = dimmer::lint::scan_file(f, rel);
    dimmer::lint::apply_baseline(found, baseline);
    for (const auto& d : found) {
      if (!d.suppressed && !d.baselined) {
        ++active;
        ADD_FAILURE() << rel << ":" << d.line << ": [" << d.rule << "] "
                      << d.message;
      }
    }
  }
  EXPECT_EQ(active, 0);
}

// A seeded violation MUST make the gate fail — proves the CI job is not
// vacuously green.
TEST(LintRepo, SeededViolationFailsTheGate) {
  auto fs = dimmer::lint::scan_source(
      "src/core/seeded.cpp",
      "#include <chrono>\n"
      "double t() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n");
  EXPECT_TRUE(dimmer::lint::has_active(fs));
}
