// Tests for tools/dimmer-lint pass 2: every rule proven to fire on a fixture
// and to honour its suppression mechanism, the JSON report pinned against a
// golden file, the shipped baseline proven empty, baseline snapshotting
// (--update-baseline semantics) proven atomic and refusal-safe, the fan-out
// scanner proven byte-identical for any job count, and — the point of the
// tool — the real src/, bench/, examples/ and tools/ trees proven clean
// under the full two-pass (call-graph-aware) analysis.
//
// Pass-1 machinery (extractor, fixpoint, cache round-trip) is covered in
// test_index.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "index.hpp"
#include "lint.hpp"

namespace fs = std::filesystem;
using dimmer::lint::Finding;
using dimmer::lint::Options;

namespace {

std::string fixture_path(const std::string& name) {
  return std::string(DIMMER_LINT_FIXTURE_DIR) + "/" + name;
}

// Scans a fixture, reporting it under a stable relative path so findings are
// machine-independent.
std::vector<Finding> scan_fixture(const std::string& name) {
  return dimmer::lint::scan_file(fixture_path(name), "fixtures/" + name);
}

// Findings for `rule` with the given flags.
std::vector<int> lines_of(const std::vector<Finding>& fs, const std::string& rule,
                          bool suppressed) {
  std::vector<int> lines;
  for (const auto& f : fs)
    if (f.rule == rule && f.suppressed == suppressed) lines.push_back(f.line);
  return lines;
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

TEST(LintRules, TableListsAllEightRules) {
  std::vector<std::string> ids;
  for (const auto& r : dimmer::lint::rules()) ids.push_back(r.id);
  const std::vector<std::string> expected = {"det-clock",  "det-umap-iter",
                                             "hot-no-alloc", "fp-accumulate",
                                             "err-swallow", "nodiscard-result",
                                             "simd-fp-order", "rng-discipline"};
  EXPECT_EQ(ids, expected);
  for (const auto& id : expected) EXPECT_TRUE(dimmer::lint::is_rule(id)) << id;
  EXPECT_FALSE(dimmer::lint::is_rule("no-such-rule"));
}

// ---------------------------------------------------------------------------
// det-clock
// ---------------------------------------------------------------------------

TEST(LintDetClock, FiresOnEveryAmbientSource) {
  auto fs = scan_fixture("clock_violation.cpp");
  // steady_clock, time, random_device, mt19937, rand, sleep_for, usleep,
  // sleep — 8 active findings.
  auto active = lines_of(fs, "det-clock", /*suppressed=*/false);
  EXPECT_EQ(active, (std::vector<int>{9, 13, 16, 17, 18, 22, 23, 24}));
}

TEST(LintDetClock, HonoursSameLineAndNextLineSuppression) {
  auto fs = scan_fixture("clock_violation.cpp");
  auto suppressed = lines_of(fs, "det-clock", /*suppressed=*/true);
  EXPECT_EQ(suppressed, (std::vector<int>{28, 33}));
  EXPECT_TRUE(dimmer::lint::has_active(fs));
}

TEST(LintDetClock, IgnoresMembersStringsAndComments) {
  auto fs = scan_fixture("clock_violation.cpp");
  // Nothing past the suppressed block (the lookalikes section) may fire.
  for (const auto& f : fs) EXPECT_LE(f.line, 33) << f.excerpt;
}

TEST(LintDetClock, ExemptsOnlyTheUtilSeam) {
  const std::string src = slurp(fixture_path("clock_violation.cpp"));
  EXPECT_FALSE(src.empty());
  // The same content reported under src/util/ produces zero det-clock
  // findings: the wall-clock wrapper lives there by design.
  auto util_fs = dimmer::lint::scan_source("src/util/wallclock_fixture.cpp", src);
  EXPECT_EQ(count_rule(util_fs, "det-clock"), 0);
  // tools/ is NOT exempt any more: the lint tool lints itself in CI, so the
  // rule fires there exactly as it does anywhere else.
  auto tools_fs = dimmer::lint::scan_source("tools/dimmer-lint/fixture.cpp", src);
  auto core_fs = dimmer::lint::scan_source("src/core/fixture.cpp", src);
  EXPECT_GT(count_rule(tools_fs, "det-clock"), 0);
  EXPECT_EQ(count_rule(tools_fs, "det-clock"), count_rule(core_fs, "det-clock"));
}

// ---------------------------------------------------------------------------
// det-umap-iter
// ---------------------------------------------------------------------------

TEST(LintUmapIter, FiresOnRangeForBeginAndAliases) {
  auto fs = scan_fixture("umap_iter.cpp");
  auto active = lines_of(fs, "det-umap-iter", /*suppressed=*/false);
  // range-for over member, range-for over alias, begin() on unordered_set.
  EXPECT_EQ(active, (std::vector<int>{19, 25, 30}));
}

TEST(LintUmapIter, SuppressionAndOrderedContainersClean) {
  auto fs = scan_fixture("umap_iter.cpp");
  auto suppressed = lines_of(fs, "det-umap-iter", /*suppressed=*/true);
  EXPECT_EQ(suppressed, (std::vector<int>{37}));
  // std::map traversal and find()/count() lookups (lines 41+) are clean.
  for (const auto& f : fs) EXPECT_LE(f.line, 37) << f.excerpt;
}

// ---------------------------------------------------------------------------
// hot-no-alloc
// ---------------------------------------------------------------------------

TEST(LintHotNoAlloc, FiresOnlyInsideMarkedRegion) {
  auto fs = scan_fixture("hot_alloc.cpp");
  auto active = lines_of(fs, "hot-no-alloc", /*suppressed=*/false);
  // push_back, new, make_unique, resize — all inside the region. reserve/
  // assign in prepare() and the push_back after `hot-path end` are clean.
  EXPECT_EQ(active, (std::vector<int>{20, 21, 22, 23}));
  auto suppressed = lines_of(fs, "hot-no-alloc", /*suppressed=*/true);
  EXPECT_EQ(suppressed, (std::vector<int>{25}));
}

TEST(LintHotNoAlloc, UnterminatedRegionIsItselfAFinding) {
  auto fs = scan_fixture("hot_unterminated.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot-no-alloc");
  EXPECT_FALSE(fs[0].suppressed);
  EXPECT_NE(fs[0].message.find("unterminated"), std::string::npos)
      << fs[0].message;
}

// ---------------------------------------------------------------------------
// fp-accumulate
// ---------------------------------------------------------------------------

TEST(LintFpAccumulate, FiresOnLibraryReductions) {
  auto fs = scan_fixture("fp_accumulate.cpp");
  auto active = lines_of(fs, "fp-accumulate", /*suppressed=*/false);
  EXPECT_EQ(active, (std::vector<int>{7, 11}));
}

TEST(LintFpAccumulate, FpOrderOkAnnotationAndNolintSuppress) {
  auto fs = scan_fixture("fp_accumulate.cpp");
  auto suppressed = lines_of(fs, "fp-accumulate", /*suppressed=*/true);
  // The fp-order-ok annotated call (line 16) and the NOLINT one (line 20).
  EXPECT_EQ(suppressed, (std::vector<int>{16, 20}));
  // The explicit loop at the bottom is invisible to the rule.
  EXPECT_EQ(count_rule(fs, "fp-accumulate"), 4);
}

// ---------------------------------------------------------------------------
// simd-fp-order
// ---------------------------------------------------------------------------

TEST(LintSimdFpOrder, FiresOnlyInsideHotRegions) {
  auto fs = scan_fixture("simd_fp_order.cpp");
  auto active = lines_of(fs, "simd-fp-order", /*suppressed=*/false);
  // reduce_add and the _mm512 intrinsic inside the region; the calls before
  // `hot-path begin` are clean.
  EXPECT_EQ(active, (std::vector<int>{15, 16}));
}

TEST(LintSimdFpOrder, AnnotationAndNolintReportAsSuppressed) {
  auto fs = scan_fixture("simd_fp_order.cpp");
  auto suppressed = lines_of(fs, "simd-fp-order", /*suppressed=*/true);
  // previous-line and same-line `simd-fp-order-ok`, plus a NOLINTNEXTLINE.
  EXPECT_EQ(suppressed, (std::vector<int>{18, 19, 21}));
  EXPECT_EQ(count_rule(fs, "simd-fp-order"), 5);
}

// ---------------------------------------------------------------------------
// err-swallow
// ---------------------------------------------------------------------------

TEST(LintErrSwallow, FiresOnCatchAllAndEmptyCatch) {
  auto fs = scan_fixture("err_swallow.cpp");
  auto active = lines_of(fs, "err-swallow", /*suppressed=*/false);
  EXPECT_EQ(active, (std::vector<int>{10, 19}));
  auto suppressed = lines_of(fs, "err-swallow", /*suppressed=*/true);
  EXPECT_EQ(suppressed, (std::vector<int>{27}));
}

// ---------------------------------------------------------------------------
// nodiscard-result
// ---------------------------------------------------------------------------

TEST(LintNodiscard, FiresOnUnattributedResultStructOnly) {
  auto fs = scan_fixture("nodiscard.cpp");
  auto active = lines_of(fs, "nodiscard-result", /*suppressed=*/false);
  // FloodResult without [[nodiscard]]; TrialResult (attributed), the
  // RoundResult forward declaration and RoundResult2 (not a listed type)
  // are all clean.
  EXPECT_EQ(active, (std::vector<int>{5}));
  EXPECT_EQ(count_rule(fs, "nodiscard-result"), 1);
}

// ---------------------------------------------------------------------------
// rng-discipline
// ---------------------------------------------------------------------------

TEST(LintRngDiscipline, UnkeyedMemberForkFiresKeyedAndPosixClean) {
  auto fs = scan_fixture("rng_discipline.cpp");
  // root.fork(cast) has no hash_u64 tag; the keyed fork on the next line and
  // the POSIX process fork() (no member access) are both clean.
  auto active = lines_of(fs, "rng-discipline", /*suppressed=*/false);
  EXPECT_EQ(active, (std::vector<int>{10}));
  auto suppressed = lines_of(fs, "rng-discipline", /*suppressed=*/true);
  EXPECT_EQ(suppressed, (std::vector<int>{12}));
  EXPECT_EQ(count_rule(fs, "rng-discipline"), 2);
}

TEST(LintRngDiscipline, ProtocolToConsumerPcgFlowFires) {
  // A protocol-module call into a consumer-module function whose signature
  // takes a Pcg32 is flagged; the consumer file itself is not (the rule
  // polices the protocol side of the boundary).
  const std::string consumer =
      "struct Pcg32;\n"
      "double consume_noise(Pcg32& rng) { return 0.0; }\n";
  const std::string proto =
      "struct Pcg32;\n"
      "void run_round(Pcg32& rng) { consume_noise(rng); }\n";
  std::vector<dimmer::lint::FileIndex> idx;
  idx.push_back(dimmer::lint::index_source("src/fault/consumer.cpp", consumer));
  idx.push_back(dimmer::lint::index_source("src/flood/proto.cpp", proto));
  auto graph = dimmer::lint::build_call_graph(idx);

  auto fs = dimmer::lint::scan_source("src/flood/proto.cpp", proto, Options(),
                                      &graph);
  auto active = lines_of(fs, "rng-discipline", /*suppressed=*/false);
  ASSERT_EQ(active, (std::vector<int>{2}));
  for (const auto& f : fs) {
    if (f.rule == "rng-discipline") {
      EXPECT_NE(f.message.find("consume_noise"), std::string::npos)
          << f.message;
    }
  }

  auto cfs = dimmer::lint::scan_source("src/fault/consumer.cpp", consumer,
                                       Options(), &graph);
  EXPECT_EQ(count_rule(cfs, "rng-discipline"), 0);
}

TEST(LintRngDiscipline, FlowOutsideProtocolModulesIsClean) {
  // The identical call is legal from a non-protocol path: consumer-to-
  // consumer handoff of an RNG stream is exactly how fault plans own their
  // forks.
  const std::string consumer =
      "struct Pcg32;\n"
      "double consume_noise(Pcg32& rng) { return 0.0; }\n";
  const std::string other =
      "struct Pcg32;\n"
      "void drive(Pcg32& rng) { consume_noise(rng); }\n";
  std::vector<dimmer::lint::FileIndex> idx;
  idx.push_back(dimmer::lint::index_source("src/fault/consumer.cpp", consumer));
  idx.push_back(dimmer::lint::index_source("src/exp/driver.cpp", other));
  auto graph = dimmer::lint::build_call_graph(idx);
  auto fs = dimmer::lint::scan_source("src/exp/driver.cpp", other, Options(),
                                      &graph);
  EXPECT_EQ(count_rule(fs, "rng-discipline"), 0);
}

// ---------------------------------------------------------------------------
// Suppression semantics
// ---------------------------------------------------------------------------

TEST(LintSuppression, BareNolintSuppressesEveryRule) {
  auto fs = dimmer::lint::scan_source(
      "fixtures/inline.cpp",
      "int f() { return std::rand(); }  // NOLINT-DIMMER\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);
  EXPECT_FALSE(dimmer::lint::has_active(fs));
}

TEST(LintSuppression, UnrelatedRuleListDoesNotSuppress) {
  auto fs = dimmer::lint::scan_source(
      "fixtures/inline.cpp",
      "int f() { return std::rand(); }  // NOLINT-DIMMER(err-swallow)\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_FALSE(fs[0].suppressed);
  EXPECT_TRUE(dimmer::lint::has_active(fs));
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(LintBaseline, KeyIsContentHashedNotLineNumbered) {
  const std::string a = "int f() { return std::rand(); }\n";
  const std::string b = "// a new comment shifts every line\n\n\n" + a;
  auto fa = dimmer::lint::scan_source("x.cpp", a);
  auto fb = dimmer::lint::scan_source("x.cpp", b);
  ASSERT_EQ(fa.size(), 1u);
  ASSERT_EQ(fb.size(), 1u);
  EXPECT_NE(fa[0].line, fb[0].line);
  EXPECT_EQ(dimmer::lint::baseline_key(fa[0]), dimmer::lint::baseline_key(fb[0]));
}

TEST(LintBaseline, ApplyMarksMatchingFindingsInactive) {
  auto fs = dimmer::lint::scan_source("x.cpp",
                                      "int f() { return std::rand(); }\n");
  ASSERT_EQ(fs.size(), 1u);
  std::set<std::string> baseline = {dimmer::lint::baseline_key(fs[0])};
  dimmer::lint::apply_baseline(fs, baseline);
  EXPECT_TRUE(fs[0].baselined);
  EXPECT_FALSE(dimmer::lint::has_active(fs));
}

TEST(LintBaseline, ShippedBaselineIsEmpty) {
  // The contract: the repo lints clean, so the checked-in baseline carries
  // zero keys. Grandfathering a violation requires a visible diff here.
  auto keys = dimmer::lint::load_baseline(DIMMER_LINT_BASELINE_FILE);
  EXPECT_TRUE(keys.empty())
      << "baseline.txt must stay empty; fix or NOLINT new findings instead";
}

TEST(LintBaseline, MissingFileYieldsEmptySet) {
  EXPECT_TRUE(dimmer::lint::load_baseline("/nonexistent/baseline").empty());
}

TEST(LintBaseline, KeySurvivesReindentation) {
  // The excerpt is whitespace-normalized before hashing, so a pure
  // reformatting pass (re-indentation, alignment churn) keeps every
  // baselined key stable.
  const std::string a = "int f() { return std::rand(); }\n";
  const std::string b = "      int   f()  {  return   std::rand();   }\n";
  auto fa = dimmer::lint::scan_source("x.cpp", a);
  auto fb = dimmer::lint::scan_source("x.cpp", b);
  ASSERT_EQ(fa.size(), 1u);
  ASSERT_EQ(fb.size(), 1u);
  EXPECT_NE(fa[0].excerpt, fb[0].excerpt);
  EXPECT_EQ(dimmer::lint::baseline_key(fa[0]),
            dimmer::lint::baseline_key(fb[0]));
}

TEST(LintBaseline, NormalizeWsCollapsesRunsAndTrims) {
  EXPECT_EQ(dimmer::lint::normalize_ws("  a \t b\r\n  c  "), "a b c");
  EXPECT_EQ(dimmer::lint::normalize_ws(""), "");
  EXPECT_EQ(dimmer::lint::normalize_ws(" \t "), "");
}

// ---------------------------------------------------------------------------
// --update-baseline semantics: sorted/deduped snapshot, written atomically,
// refused outright when the scan itself is broken.
// ---------------------------------------------------------------------------

TEST(LintUpdateBaseline, WritesSortedDedupedKeys) {
  const fs::path out = fs::temp_directory_path() / "dimmer_lint_ub1.txt";
  fs::remove(out);
  // Two distinct findings plus a duplicate (the same line content repeated
  // further down hashes to the same key) and a suppressed one that must NOT
  // be snapshotted.
  auto findings = dimmer::lint::scan_source(
      "src/core/b.cpp",
      "int f() { return std::rand(); }\n"
      "int g() { return std::rand(); }\n"
      "int f() { return std::rand(); }\n"
      "int h() { return std::rand(); }  // NOLINT-DIMMER\n");
  ASSERT_EQ(findings.size(), 4u);
  ASSERT_TRUE(dimmer::lint::update_baseline(findings, out.string()));
  auto keys = dimmer::lint::load_baseline(out.string());
  // f and g have different excerpts -> two keys (the repeated f line dedupes
  // into the first); the suppressed h is absent.
  EXPECT_EQ(keys.size(), 2u);
  for (const auto& k : keys)
    EXPECT_EQ(k.find("src/core/b.cpp|det-clock|"), 0u) << k;
  // The on-disk order is sorted (load_baseline's set would hide that).
  std::string text = slurp(out.string());
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string l;
  while (std::getline(ss, l))
    if (!l.empty() && l[0] != '#') lines.push_back(l);
  EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end()));
  fs::remove(out);
}

TEST(LintUpdateBaseline, RoundTripSilencesTheGate) {
  const fs::path out = fs::temp_directory_path() / "dimmer_lint_ub2.txt";
  fs::remove(out);
  const std::string src = "int f() { return std::rand(); }\n";
  auto findings = dimmer::lint::scan_source("src/core/c.cpp", src);
  ASSERT_TRUE(dimmer::lint::has_active(findings));
  ASSERT_TRUE(dimmer::lint::update_baseline(findings, out.string()));
  auto again = dimmer::lint::scan_source("src/core/c.cpp", src);
  dimmer::lint::apply_baseline(again, dimmer::lint::load_baseline(out.string()));
  EXPECT_FALSE(dimmer::lint::has_active(again));
  fs::remove(out);
}

TEST(LintUpdateBaseline, RefusesOnParseErrorAndLeavesTargetUntouched) {
  const fs::path out = fs::temp_directory_path() / "dimmer_lint_ub3.txt";
  {
    std::ofstream prev(out);
    prev << "# sentinel\nexisting|det-clock|0\n";
  }
  // An unterminated hot-path region is a parse error: the scan cannot be
  // trusted as a complete picture, so snapshotting must refuse.
  auto findings = dimmer::lint::scan_source(
      "src/core/d.cpp", "// dimmer-lint: hot-path begin\nint x;\n");
  ASSERT_FALSE(findings.empty());
  EXPECT_FALSE(dimmer::lint::update_baseline(findings, out.string()));
  EXPECT_NE(slurp(out.string()).find("sentinel"), std::string::npos)
      << "refusal must leave the existing baseline byte-identical";
  fs::remove(out);
}

TEST(LintUpdateBaseline, AtomicWriteRefusesUnwritableDirectory) {
  EXPECT_FALSE(dimmer::lint::write_file_atomic(
      "/nonexistent-dir/deeper/baseline.txt", "x\n"));
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

TEST(LintReport, MatchesGoldenFile) {
  auto fs = scan_fixture("clock_violation.cpp");
  const std::string got = dimmer::lint::json_report(std::move(fs));
  const std::string want = slurp(fixture_path("golden_clock_report.json"));
  ASSERT_FALSE(want.empty()) << "golden file missing";
  EXPECT_EQ(got, want);
}

TEST(LintReport, IsByteDeterministic) {
  auto a = dimmer::lint::json_report(scan_fixture("umap_iter.cpp"));
  auto b = dimmer::lint::json_report(scan_fixture("umap_iter.cpp"));
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// The repo itself is clean (the static mirror of the jobs=1-vs-8 BENCH
// byte-identity checks). Scans the real src/, bench/, examples/ and tools/
// trees under the full two-pass analysis: call graph built over every file,
// transitive and rng-discipline rules on.
// ---------------------------------------------------------------------------

namespace {

// Loads the repo's lintable files (the same input set CI hands the CLI),
// reported under repo-relative paths.
std::vector<dimmer::lint::SourceFile> repo_sources() {
  const fs::path root = DIMMER_LINT_REPO_ROOT;
  std::vector<std::string> paths;
  for (const char* dir : {"src", "bench", "examples", "tools"}) {
    for (auto it = fs::recursive_directory_iterator(root / dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      auto ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h")
        paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<dimmer::lint::SourceFile> files;
  for (const auto& p : paths)
    files.push_back({fs::relative(p, root).generic_string(), slurp(p)});
  return files;
}

dimmer::lint::CallGraph repo_graph(
    const std::vector<dimmer::lint::SourceFile>& files) {
  std::vector<dimmer::lint::FileIndex> idx;
  for (const auto& f : files)
    idx.push_back(dimmer::lint::index_source(f.path, f.contents));
  return dimmer::lint::build_call_graph(std::move(idx));
}

}  // namespace

TEST(LintRepo, SrcBenchExamplesToolsHaveNoActiveFindings) {
  auto files = repo_sources();
  ASSERT_GT(files.size(), 50u);  // sanity: we really walked the tree
  auto graph = repo_graph(files);
  auto baseline = dimmer::lint::load_baseline(DIMMER_LINT_BASELINE_FILE);
  auto found = dimmer::lint::scan_sources(files, Options(), &graph, 4);
  dimmer::lint::apply_baseline(found, baseline);
  int active = 0;
  for (const auto& d : found) {
    if (!d.suppressed && !d.baselined) {
      ++active;
      ADD_FAILURE() << d.file << ":" << d.line << ": [" << d.rule << "] "
                    << d.message;
    }
  }
  EXPECT_EQ(active, 0);
}

TEST(LintRepo, ReportIsByteIdenticalForAnyJobCount) {
  // scan_sources merges per-file results in input order, so the JSON report
  // must be byte-identical whether pass 2 ran on one thread or eight — the
  // static-analysis mirror of the shards=1-vs-N campaign identity.
  auto files = repo_sources();
  auto graph = repo_graph(files);
  auto r1 = dimmer::lint::json_report(
      dimmer::lint::scan_sources(files, Options(), &graph, 1));
  auto r8 = dimmer::lint::json_report(
      dimmer::lint::scan_sources(files, Options(), &graph, 8));
  EXPECT_EQ(r1, r8);
}

// A seeded violation MUST make the gate fail — proves the CI job is not
// vacuously green.
TEST(LintRepo, SeededViolationFailsTheGate) {
  auto fs = dimmer::lint::scan_source(
      "src/core/seeded.cpp",
      "#include <chrono>\n"
      "double t() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n");
  EXPECT_TRUE(dimmer::lint::has_active(fs));
}

// ---------------------------------------------------------------------------
// The CLI end to end: a seeded *transitive* violation in a temp tree makes
// the real binary exit 1 and name the call chain; a second (warm-cache) run
// produces a byte-identical JSON report.
// ---------------------------------------------------------------------------

TEST(LintCli, SeededTransitiveViolationExitsOneNamingTheChain) {
  const fs::path root = fs::temp_directory_path() / "dimmer_lint_gate";
  fs::remove_all(root);
  fs::create_directories(root / "src/core");
  fs::create_directories(root / "src/flood");
  {
    std::ofstream h(root / "src/core/helper.cpp");
    h << "#include <vector>\n"
         "void helper_leaf(std::vector<int>& v) { v.push_back(1); }\n"
         "void helper_mid(std::vector<int>& v) { helper_leaf(v); }\n";
    std::ofstream hot(root / "src/flood/hot.cpp");
    hot << "#include <vector>\n"
           "void kernel(std::vector<int>& v) {\n"
           "  // dimmer-lint: hot-path begin\n"
           "  helper_mid(v);\n"
           "  // dimmer-lint: hot-path end\n"
           "}\n";
  }
  const std::string exe = DIMMER_LINT_EXE;
  const std::string base = "cd " + root.string() + " && " + exe +
                           " --root . --index-cache cache.txt";
  auto run = [&](const std::string& tail) {
    int st = std::system((base + " " + tail).c_str());
    return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
  };
  // Cold run: exit 1, chain named on stderr/stdout.
  EXPECT_EQ(run("--json r1.json src > out1.txt 2>&1"), 1);
  const std::string out = slurp((root / "out1.txt").string());
  EXPECT_NE(out.find("hot-no-alloc"), std::string::npos) << out;
  EXPECT_NE(out.find("helper_mid -> helper_leaf"), std::string::npos) << out;
  EXPECT_NE(out.find("`push_back` at src/core/helper.cpp:2"),
            std::string::npos)
      << out;
  // Warm-cache rerun: same exit, byte-identical report.
  ASSERT_TRUE(fs::exists(root / "cache.txt"));
  EXPECT_EQ(run("--json r2.json src > out2.txt 2>&1"), 1);
  EXPECT_EQ(slurp((root / "r1.json").string()),
            slurp((root / "r2.json").string()));
  EXPECT_FALSE(slurp((root / "r1.json").string()).empty());
  // --update-baseline snapshots the violation, after which the gate passes.
  EXPECT_EQ(run("--baseline accepted.txt --update-baseline src "
                "> /dev/null 2>&1"),
            0);
  EXPECT_EQ(run("--baseline accepted.txt src > /dev/null 2>&1"), 0);
  fs::remove_all(root);
}
