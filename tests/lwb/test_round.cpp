#include <gtest/gtest.h>

#include <memory>

#include "core/scenarios.hpp"
#include "lwb/round.hpp"
#include "phy/topology.hpp"

namespace dimmer::lwb {
namespace {

std::vector<NodeState> uniform_states(int n, int n_tx = 3) {
  return std::vector<NodeState>(static_cast<std::size_t>(n),
                                NodeState{n_tx, true, 0});
}

std::vector<phy::NodeId> all_sources(int n) {
  std::vector<phy::NodeId> s;
  for (int i = 1; i < n; ++i) s.push_back(i);
  return s;
}

TEST(RoundExecutor, ControlReceiversApplyNewParameter) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  RoundExecutor ex(topo, field, RoundConfig{});
  auto states = uniform_states(18, 3);
  util::Pcg32 rng(1);
  RoundResult rr = ex.run_round(0, 0, 0, all_sources(18), /*next=*/5, states,
                                rng);
  for (int i = 0; i < 18; ++i) {
    if (rr.got_control[i]) {
      EXPECT_EQ(states[i].n_tx, 5) << "node " << i;
      EXPECT_EQ(states[i].sync_age, 0);
    }
  }
  // Clean network: everyone hears the schedule.
  EXPECT_TRUE(rr.got_control[17]);
}

TEST(RoundExecutor, CoordinatorAlwaysHasTheSchedule) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  core::add_static_jamming(field, topo, 0.35);
  RoundExecutor ex(topo, field, RoundConfig{});
  auto states = uniform_states(18, 1);
  util::Pcg32 rng(2);
  RoundResult rr = ex.run_round(0, 0, 0, all_sources(18), 1, states, rng);
  EXPECT_TRUE(rr.got_control[0]);
  EXPECT_EQ(states[0].sync_age, 0);
}

TEST(RoundExecutor, MissedControlAgesSync) {
  phy::Topology topo = phy::make_line_topology(3, 500.0);  // node 2 isolated
  phy::InterferenceField field;
  RoundExecutor ex(topo, field, RoundConfig{});
  auto states = uniform_states(3, 3);
  util::Pcg32 rng(3);
  for (int r = 0; r < 4; ++r)  // run for the state side effects only
    (void)ex.run_round(r * sim::seconds(4), r, 0, {1, 2}, 3, states, rng);
  EXPECT_EQ(states[2].sync_age, 4);
}

TEST(RoundExecutor, DesyncedSourceMakesSilentSlot) {
  phy::Topology topo = phy::make_line_topology(3, 500.0);
  phy::InterferenceField field;
  RoundConfig cfg;
  cfg.max_sync_age = 0;  // desynchronize immediately on a miss
  RoundExecutor ex(topo, field, cfg);
  auto states = uniform_states(3, 3);
  util::Pcg32 rng(4);
  (void)ex.run_round(0, 0, 0, {2}, 3, states, rng);  // miss: ages sync
  RoundResult rr = ex.run_round(sim::seconds(4), 1, 0, {2}, 3, states, rng);
  ASSERT_EQ(rr.data.size(), 1u);
  EXPECT_FALSE(rr.data[0].source_synced);
}

TEST(RoundExecutor, SingleChannelWithoutHopSequence) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  RoundConfig cfg;  // empty hop_sequence
  RoundExecutor ex(topo, field, cfg);
  for (std::uint64_t round = 0; round < 5; ++round)
    for (std::size_t slot = 0; slot < 4; ++slot)
      EXPECT_EQ(ex.data_channel(round, slot), cfg.control_channel);
}

TEST(RoundExecutor, HoppingWalksTheSequence) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  RoundConfig cfg;
  cfg.hop_sequence = {15, 20, 25};
  RoundExecutor ex(topo, field, cfg);
  EXPECT_EQ(ex.data_channel(0, 0), 15);
  EXPECT_EQ(ex.data_channel(0, 1), 20);
  EXPECT_EQ(ex.data_channel(0, 2), 25);
  EXPECT_EQ(ex.data_channel(1, 0), 20);  // round index rotates the start
}

TEST(RoundExecutor, RoundDurationAccounting) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  RoundConfig cfg;
  RoundExecutor ex(topo, field, cfg);
  // control + 18 data slots + 18 gaps
  EXPECT_EQ(ex.round_duration(18),
            19 * cfg.slot_len_us + 18 * cfg.slot_gap_us);
}

TEST(RoundExecutor, EnergyIsAccountedForEveryAwakeSlot) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  RoundExecutor ex(topo, field, RoundConfig{});
  auto states = uniform_states(18, 3);
  util::Pcg32 rng(5);
  RoundResult rr = ex.run_round(0, 0, 0, all_sources(18), 3, states, rng);
  for (int i = 0; i < 18; ++i) {
    EXPECT_EQ(rr.awake_slots[i], 18);  // 1 control + 17 data slots
    EXPECT_GT(rr.radio_on_us[i], 0);
  }
}

TEST(RoundExecutor, PassiveRolesDoNotRelayData) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  RoundExecutor ex(topo, field, RoundConfig{});
  auto states = uniform_states(18, 3);
  for (int i = 1; i < 18; i += 2) states[i].forwarder = false;
  util::Pcg32 rng(6);
  RoundResult rr = ex.run_round(0, 0, 0, all_sources(18), 3, states, rng);
  for (const auto& slot : rr.data) {
    for (int i = 1; i < 18; i += 2) {
      if (i == slot.source) continue;  // sources always transmit
      EXPECT_EQ(slot.flood.nodes[i].transmissions, 0)
          << "passive node " << i << " relayed";
    }
  }
}

TEST(RoundExecutor, RejectsBadInput) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  RoundExecutor ex(topo, field, RoundConfig{});
  auto states = uniform_states(18, 3);
  util::Pcg32 rng(7);
  EXPECT_THROW(ex.run_round(0, 0, 99, {1}, 3, states, rng),
               util::RequireError);
  EXPECT_THROW(ex.run_round(0, 0, 0, {99}, 3, states, rng),
               util::RequireError);
  auto small = uniform_states(5, 3);
  EXPECT_THROW(ex.run_round(0, 0, 0, {1}, 3, small, rng),
               util::RequireError);
}

TEST(RoundExecutor, HeavyJamOnControlChannelDesynchronizesNodes) {
  phy::Topology topo = phy::make_office18_topology();
  phy::InterferenceField field;
  // Continuous high-power interference on the control channel.
  phy::BurstJammer::Config cfg;
  cfg.position = {25.0, 6.0};
  cfg.tx_power_dbm = 20.0;
  cfg.burst_us = sim::ms(100);
  cfg.period_us = sim::ms(100);  // always on
  cfg.channels = {phy::kControlChannel};
  field.add(std::make_unique<phy::BurstJammer>(cfg));

  RoundExecutor ex(topo, field, RoundConfig{});
  auto states = uniform_states(18, 3);
  util::Pcg32 rng(8);
  for (int r = 0; r < 6; ++r)  // run for the state side effects only
    (void)ex.run_round(r * sim::seconds(4), r, 0, all_sources(18), 3, states, rng);
  int desynced = 0;
  for (int i = 1; i < 18; ++i)
    if (states[i].sync_age > RoundConfig{}.max_sync_age) ++desynced;
  EXPECT_GT(desynced, 8);  // most of the network lost the schedule
}

}  // namespace
}  // namespace dimmer::lwb
