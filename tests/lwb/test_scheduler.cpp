#include <gtest/gtest.h>

#include "lwb/scheduler.hpp"
#include "util/check.hpp"

namespace dimmer::lwb {
namespace {

TEST(Scheduler, StreamsBecomeDueAfterTheirIpi) {
  Scheduler s;
  s.add_stream(3, sim::seconds(4), /*now=*/0);
  EXPECT_TRUE(s.schedule_round(sim::seconds(2), 8).empty());
  auto slots = s.schedule_round(sim::seconds(4), 8);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0], 3);
}

TEST(Scheduler, DeadlineAdvancesAfterAllocation) {
  Scheduler s;
  s.add_stream(1, sim::seconds(4), 0);
  EXPECT_EQ(s.schedule_round(sim::seconds(4), 8).size(), 1u);
  EXPECT_TRUE(s.schedule_round(sim::seconds(5), 8).empty());
  EXPECT_EQ(s.schedule_round(sim::seconds(8), 8).size(), 1u);
}

TEST(Scheduler, EarliestDeadlineFirstUnderBudget) {
  Scheduler s;
  s.add_stream(1, sim::seconds(10), 0);  // due at 10
  s.add_stream(2, sim::seconds(4), 0);   // due at 4
  s.add_stream(3, sim::seconds(7), 0);   // due at 7
  auto slots = s.schedule_round(sim::seconds(10), 2);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0], 2);
  EXPECT_EQ(slots[1], 3);  // node 1 carried over
  // Second allocation at the same time: stream 2 is already due again
  // (deadline 8 < 10) and still precedes the carried-over stream 1.
  auto next = s.schedule_round(sim::seconds(10), 2);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_EQ(next[0], 2);
  EXPECT_EQ(next[1], 1);
}

TEST(Scheduler, BacklogAccumulatesMissedIntervals) {
  Scheduler s;
  s.add_stream(5, sim::seconds(1), 0);
  // Nothing scheduled for 4 seconds: 4 intervals owed, drained one per call.
  auto r1 = s.schedule_round(sim::seconds(4), 8);
  EXPECT_EQ(r1.size(), 1u);
  auto r2 = s.schedule_round(sim::seconds(4), 8);
  EXPECT_EQ(r2.size(), 1u);  // still behind
  s.schedule_round(sim::seconds(4), 8);
  s.schedule_round(sim::seconds(4), 8);
  EXPECT_TRUE(s.schedule_round(sim::seconds(4), 8).empty());  // caught up
}

TEST(Scheduler, MultipleStreamsPerSource) {
  Scheduler s;
  s.add_stream(2, sim::seconds(4), 0);
  s.add_stream(2, sim::seconds(4), 0);
  auto slots = s.schedule_round(sim::seconds(4), 8);
  EXPECT_EQ(slots.size(), 2u);
}

TEST(Scheduler, RemoveStopsAllocation) {
  Scheduler s;
  auto id = s.add_stream(1, sim::seconds(1), 0);
  s.add_stream(2, sim::seconds(1), 0);
  s.remove_stream(id);
  EXPECT_EQ(s.stream_count(), 1u);
  auto slots = s.schedule_round(sim::seconds(2), 8);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0], 2);
  EXPECT_THROW(s.remove_stream(id), util::RequireError);  // double remove
  EXPECT_THROW(s.stream(id), util::RequireError);
}

TEST(Scheduler, NextDeadlineTracksEarliestStream) {
  Scheduler s;
  EXPECT_EQ(s.next_deadline(), -1);
  s.add_stream(1, sim::seconds(10), 0);
  s.add_stream(2, sim::seconds(3), 0);
  EXPECT_EQ(s.next_deadline(), sim::seconds(3));
  s.schedule_round(sim::seconds(3), 8);
  EXPECT_EQ(s.next_deadline(), sim::seconds(6));
}

TEST(Scheduler, BacklogCapDropsOldestOverdueIntervals) {
  Scheduler s;
  s.set_max_backlog(3);
  s.add_stream(5, sim::seconds(1), 0);  // first due at 1 s
  // A 10 s outage leaves the stream 10 intervals behind; the cap forfeits
  // the oldest 7 so recovery drains at most 3 stale slots.
  auto r1 = s.schedule_round(sim::seconds(10), 8);
  EXPECT_EQ(r1.size(), 1u);
  EXPECT_EQ(s.backlog_dropped(), 7u);
  EXPECT_EQ(s.schedule_round(sim::seconds(10), 8).size(), 1u);
  EXPECT_EQ(s.schedule_round(sim::seconds(10), 8).size(), 1u);
  EXPECT_TRUE(s.schedule_round(sim::seconds(10), 8).empty());  // caught up
  EXPECT_EQ(s.backlog_dropped(), 7u);  // no further drops once within cap
}

TEST(Scheduler, ZeroBacklogCapDisablesDropping) {
  Scheduler s;
  s.set_max_backlog(0);
  EXPECT_EQ(s.max_backlog(), 0u);
  s.add_stream(5, sim::seconds(1), 0);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(s.schedule_round(sim::seconds(10), 8).size(), 1u) << i;
  EXPECT_TRUE(s.schedule_round(sim::seconds(10), 8).empty());
  EXPECT_EQ(s.backlog_dropped(), 0u);
}

TEST(Scheduler, DefaultBacklogCapIsInertForHealthyStreams) {
  Scheduler s;
  EXPECT_EQ(s.max_backlog(), 64u);
  s.add_stream(1, sim::seconds(4), 0);
  for (int r = 1; r <= 8; ++r)
    EXPECT_EQ(s.schedule_round(sim::seconds(4 * r), 8).size(), 1u);
  EXPECT_EQ(s.backlog_dropped(), 0u);
}

TEST(Scheduler, BacklogDropsAreCounted) {
  obs::MetricsRegistry metrics;
  Scheduler s;
  s.set_instrumentation(obs::Instrumentation{nullptr, &metrics});
  s.set_max_backlog(2);
  s.add_stream(3, sim::seconds(1), 0);
  s.schedule_round(sim::seconds(6), 8);  // 6 behind, cap 2 -> 4 dropped
  EXPECT_EQ(s.backlog_dropped(), 4u);
  EXPECT_EQ(metrics.counter("scheduler.backlog_dropped"), 4u);
}

TEST(Scheduler, RejectsBadArguments) {
  Scheduler s;
  EXPECT_THROW(s.add_stream(-1, sim::seconds(1), 0), util::RequireError);
  EXPECT_THROW(s.add_stream(1, 0, 0), util::RequireError);
  EXPECT_THROW(s.schedule_round(0, 0), util::RequireError);
  EXPECT_THROW(s.remove_stream(42), util::RequireError);
}

}  // namespace
}  // namespace dimmer::lwb
