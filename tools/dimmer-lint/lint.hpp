// dimmer-lint — project-specific static analysis for the determinism and
// hot-path contracts this repository's results depend on.
//
// Every figure, ablation and fault-recovery artifact in this repo is defended
// by *dynamic* bit-identity checks (jobs=1 vs jobs=8 JSON diffs, RNG-lockstep
// tests, the differential flood suite). dimmer-lint proves the same
// invariants *statically*: a token-level scanner (comment/string aware, no
// full AST) over src/, bench/, examples/ and tools/ that flags the constructs
// those dynamic tests exist to catch, before CI ever runs a simulation.
//
// The tool runs two passes. Pass 1 (index.hpp) extracts every function
// definition into a repo-wide call graph and fixpoint-propagates the
// transitive properties may-allocate / may-touch-clock /
// may-iterate-unordered / may-draw-rng. Pass 2 runs the per-file rules below;
// when a call graph is supplied, the hot-path and determinism rules also fire
// on *transitive* violations — a hot region that reaches an allocating
// function through any call chain — and the finding text names the chain.
//
// Rules (each individually suppressible):
//
//   det-clock        Wall-clock and ambient-randomness reads
//                    (std::chrono::*_clock::now, time(), std::rand,
//                    std::random_device, std::mt19937, ...) outside
//                    src/util/.  All randomness must flow through forked
//                    util::Pcg32 streams; all timing through util/wallclock
//                    (reporting only, stripped from byte-identity diffs).
//                    With a call graph: also fires when a hot-path region
//                    reaches a clock read through a call chain.
//
//   det-umap-iter    Range-for / begin() traversal of a std::unordered_map
//                    or std::unordered_set.  Iteration order is
//                    implementation-defined, so any result or serialized
//                    output derived from it is nondeterministic.  Use
//                    std::map, a sorted key vector, or lookups only.
//                    With a call graph: also fires transitively from hot
//                    regions.
//
//   hot-no-alloc     new / make_unique / container-growing calls inside a
//                    region bracketed by
//                       // dimmer-lint: hot-path begin
//                       // dimmer-lint: hot-path end
//                    These regions mark the PR 4 zero-allocation flood loop
//                    and its workspace users; the allocation-counting test
//                    (tests/flood/test_workspace.cpp) enforces the same
//                    contract dynamically.  With a call graph: also fires
//                    when the region *calls* (or passes a pointer to) a
//                    function that may allocate, at any depth.
//
//   fp-accumulate    std::accumulate / std::reduce / std::transform_reduce /
//                    std::inner_product calls.  Floating-point reduction
//                    order changes results bit-for-bit; result paths must
//                    make the order explicit (a plain loop) or annotate the
//                    call with `// dimmer-lint: fp-order-ok`.
//
//   err-swallow      `catch (...)` (which can hide determinism bugs as
//                    silently-absorbed exceptions) and syntactically empty
//                    catch handlers.
//
//   nodiscard-result Definitions of the result structs the experiment
//                    pipeline depends on (FloodResult, TrialResult,
//                    RoundResult) without [[nodiscard]]: a silently dropped
//                    result is how a bench diverges from what it reports.
//
//   simd-fp-order    Cross-lane SIMD reductions (reduce_add / hadd /
//                    horizontal_* and the matching _mm* intrinsics) inside a
//                    hot-path region.  The util/simd contract (DESIGN.md
//                    §12) keeps hot kernels lanewise so results cannot
//                    depend on backend width; a justified reduction must be
//                    annotated `// dimmer-lint: simd-fp-order-ok` (same line
//                    or the line above) and stays visible as suppressed.
//
//   rng-discipline   RNG forking and flow discipline (the PR 3/PR 8
//                    invariant that fault and backoff randomness never
//                    perturbs protocol lockstep).  (a) A `.fork(...)` /
//                    `->fork(...)` call on an RNG object must carry a
//                    `hash_u64`-keyed tag so stream identity is a pure
//                    function of (parent seed, tag), never of draw order or
//                    loop position.  (b) With a call graph: code in the
//                    protocol modules (src/core/, src/lwb/, src/flood/,
//                    src/rl/) must not call a function *defined* in a
//                    consumer module (src/fault/, src/exp/, bench/) whose
//                    signature takes a util::Pcg32 — handing a protocol
//                    stream across that boundary is how consumer draws end
//                    up interleaved into protocol lockstep.
//
// Trust annotation: `// dimmer-lint: pure(<prop>[, <prop>...])` on a
// function's signature line (or the line above) stops the named transitive
// property from propagating to callers (e.g. capacity-recycling `assign`
// audited by the dynamic allocation counter). The annotation is itself
// reported as a *suppressed* finding at the definition whenever it actually
// masks a propagated property — sanctioned, visible, never hidden.
//
// Suppression:
//   // NOLINT-DIMMER              suppress every rule on this line
//   // NOLINT-DIMMER(rule[,rule]) suppress the named rules on this line
//   // NOLINTNEXTLINE-DIMMER[(rules)]  same, for the following line
//
// Baseline: a checked-in file of `path|rule|hash` keys (see baseline_key);
// matching findings are reported as baselined and do not fail the run. The
// shipped baseline (tools/dimmer-lint/baseline.txt) is empty — the repo is
// clean — and a test asserts it stays that way.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace dimmer::lint {

class CallGraph;  // index.hpp

/// One lint rule, as listed by `dimmer-lint --list-rules` and in the JSON
/// report.
struct Rule {
  std::string id;
  std::string summary;
};

/// The fixed rule table, in report order.
const std::vector<Rule>& rules();

/// True if `id` names a known rule.
bool is_rule(const std::string& id);

/// One diagnostic. `file` is reported exactly as handed to the scanner, so
/// callers control whether paths are absolute or repo-relative.
struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
  std::string excerpt;      ///< trimmed source line
  bool suppressed = false;  ///< hit an inline NOLINT-DIMMER annotation
  bool baselined = false;   ///< matched the baseline file
  /// The finding reports the *scan itself* going wrong (unreadable file,
  /// unbalanced hot-path region) rather than a code-level violation. A report
  /// containing parse errors cannot be trusted as a complete picture, so
  /// update_baseline refuses to snapshot it.
  bool parse_error = false;
};

/// Scanner configuration. Defaults encode this repo's policy.
struct Options {
  /// Path prefixes (after '\' -> '/' normalization) where det-clock is
  /// allowed: only the audited wall-clock wrapper seam itself. The lint tool
  /// is *not* exempt — it lints itself in CI.
  std::vector<std::string> clock_exempt_prefixes = {"src/util/"};
  /// Result types that must be declared [[nodiscard]].
  std::vector<std::string> nodiscard_types = {"FloodResult", "TrialResult",
                                              "RoundResult"};
};

/// Scans one translation unit. `path` is used for reporting and for the
/// path-scoped rules (det-clock exemptions, rng-discipline modules);
/// `contents` is the source text. When `graph` is non-null the transitive
/// rules run too. Findings are ordered by line.
std::vector<Finding> scan_source(const std::string& path,
                                 const std::string& contents,
                                 const Options& opt = Options(),
                                 const CallGraph* graph = nullptr);

/// Reads `path` from disk and scans it. `report_as`, if non-empty, replaces
/// `path` in the findings (used to keep report paths repo-relative).
std::vector<Finding> scan_file(const std::string& path,
                               const std::string& report_as = "",
                               const Options& opt = Options(),
                               const CallGraph* graph = nullptr);

/// One in-memory source file for the batch scanner.
struct SourceFile {
  std::string path;  ///< reported verbatim in findings
  std::string contents;
};

/// Scans every file, fanning pass 2 out across `jobs` worker threads.
/// Files are scanned independently and results merged in input order, so the
/// output — and therefore the JSON report — is byte-identical for any `jobs`.
std::vector<Finding> scan_sources(const std::vector<SourceFile>& files,
                                  const Options& opt = Options(),
                                  const CallGraph* graph = nullptr,
                                  int jobs = 1);

/// Collapses every run of whitespace in `s` to a single space and trims both
/// ends (exposed for tests).
std::string normalize_ws(const std::string& s);

/// Stable baseline key: "path|rule|fnv1a(whitespace-normalized excerpt)".
/// Content-hashed rather than line-numbered so unrelated edits above a
/// baselined finding do not invalidate it, and whitespace-normalized so pure
/// reformatting (re-indentation) does not churn keys.
std::string baseline_key(const Finding& f);

/// Parses a baseline file: one key per line, '#' comments and blank lines
/// ignored. A missing file yields an empty set.
std::set<std::string> load_baseline(const std::string& path);

/// Marks findings whose baseline_key is in `baseline` as baselined.
void apply_baseline(std::vector<Finding>& findings,
                    const std::set<std::string>& baseline);

/// True if any finding is active (neither suppressed nor baselined) — the
/// process exit criterion.
bool has_active(const std::vector<Finding>& findings);

/// Writes `data` to `path` atomically: sibling temp file, fsync, rename over
/// the target, then fsync the parent directory (util/atomic_file semantics,
/// re-implemented here so the tool stays standalone). Returns false and
/// leaves any existing `path` untouched on failure.
bool write_file_atomic(const std::string& path, const std::string& data);

/// Snapshots the current unsuppressed findings as a sorted, deduped baseline
/// file, written atomically. Refuses (returns false, touches nothing) when
/// any finding is a parse error — a broken scan must not be immortalized as
/// the accepted state.
bool update_baseline(const std::vector<Finding>& findings,
                     const std::string& path);

/// Machine-readable report: rule table, per-rule active counts, and every
/// finding (including suppressed/baselined ones, flagged as such). Output is
/// byte-deterministic: findings sorted by (file, line, rule), numbers
/// emitted via util::json_number.
std::string json_report(std::vector<Finding> findings);

/// FNV-1a 64-bit over `s` (exposed for tests).
std::uint64_t fnv1a(const std::string& s);

}  // namespace dimmer::lint
