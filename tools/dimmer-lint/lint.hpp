// dimmer-lint — project-specific static analysis for the determinism and
// hot-path contracts this repository's results depend on.
//
// Every figure, ablation and fault-recovery artifact in this repo is defended
// by *dynamic* bit-identity checks (jobs=1 vs jobs=8 JSON diffs, RNG-lockstep
// tests, the differential flood suite). dimmer-lint proves the same
// invariants *statically*: a token-level scanner (comment/string aware, no
// full AST) over src/, bench/ and examples/ that flags the constructs those
// dynamic tests exist to catch, before CI ever runs a simulation.
//
// Rules (each individually suppressible):
//
//   det-clock        Wall-clock and ambient-randomness reads
//                    (std::chrono::*_clock::now, time(), std::rand,
//                    std::random_device, std::mt19937, ...) outside
//                    src/util/.  All randomness must flow through forked
//                    util::Pcg32 streams; all timing through util/wallclock
//                    (reporting only, stripped from byte-identity diffs).
//
//   det-umap-iter    Range-for / begin() traversal of a std::unordered_map
//                    or std::unordered_set.  Iteration order is
//                    implementation-defined, so any result or serialized
//                    output derived from it is nondeterministic.  Use
//                    std::map, a sorted key vector, or lookups only.
//
//   hot-no-alloc     new / make_unique / container-growing calls inside a
//                    region bracketed by
//                       // dimmer-lint: hot-path begin
//                       // dimmer-lint: hot-path end
//                    These regions mark the PR 4 zero-allocation flood loop
//                    and its workspace users; the allocation-counting test
//                    (tests/flood/test_workspace.cpp) enforces the same
//                    contract dynamically.
//
//   fp-accumulate    std::accumulate / std::reduce / std::transform_reduce /
//                    std::inner_product calls.  Floating-point reduction
//                    order changes results bit-for-bit; result paths must
//                    make the order explicit (a plain loop) or annotate the
//                    call with `// dimmer-lint: fp-order-ok`.
//
//   err-swallow      `catch (...)` (which can hide determinism bugs as
//                    silently-absorbed exceptions) and syntactically empty
//                    catch handlers.
//
//   nodiscard-result Definitions of the result structs the experiment
//                    pipeline depends on (FloodResult, TrialResult,
//                    RoundResult) without [[nodiscard]]: a silently dropped
//                    result is how a bench diverges from what it reports.
//
//   simd-fp-order    Cross-lane SIMD reductions (reduce_add / hadd /
//                    horizontal_* and the matching _mm* intrinsics) inside a
//                    hot-path region.  The util/simd contract (DESIGN.md
//                    §12) keeps hot kernels lanewise so results cannot
//                    depend on backend width; a justified reduction must be
//                    annotated `// dimmer-lint: simd-fp-order-ok` (same line
//                    or the line above) and stays visible as suppressed.
//
// Suppression:
//   // NOLINT-DIMMER              suppress every rule on this line
//   // NOLINT-DIMMER(rule[,rule]) suppress the named rules on this line
//   // NOLINTNEXTLINE-DIMMER[(rules)]  same, for the following line
//
// Baseline: a checked-in file of `path|rule|hash` keys (see baseline_key);
// matching findings are reported as baselined and do not fail the run. The
// shipped baseline (tools/dimmer-lint/baseline.txt) is empty — the repo is
// clean — and a test asserts it stays that way.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace dimmer::lint {

/// One lint rule, as listed by `dimmer-lint --list-rules` and in the JSON
/// report.
struct Rule {
  std::string id;
  std::string summary;
};

/// The fixed rule table, in report order.
const std::vector<Rule>& rules();

/// True if `id` names a known rule.
bool is_rule(const std::string& id);

/// One diagnostic. `file` is reported exactly as handed to the scanner, so
/// callers control whether paths are absolute or repo-relative.
struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
  std::string excerpt;      ///< trimmed source line
  bool suppressed = false;  ///< hit an inline NOLINT-DIMMER annotation
  bool baselined = false;   ///< matched the baseline file
};

/// Scanner configuration. Defaults encode this repo's policy.
struct Options {
  /// Path prefixes (after '\' -> '/' normalization) where det-clock is
  /// allowed: the wall-clock wrapper itself, and the lint tool.
  std::vector<std::string> clock_exempt_prefixes = {"src/util/", "tools/"};
  /// Result types that must be declared [[nodiscard]].
  std::vector<std::string> nodiscard_types = {"FloodResult", "TrialResult",
                                              "RoundResult"};
};

/// Scans one translation unit. `path` is used for reporting and for the
/// path-scoped rules (det-clock exemptions); `contents` is the source text.
/// Findings are ordered by line.
std::vector<Finding> scan_source(const std::string& path,
                                 const std::string& contents,
                                 const Options& opt = Options());

/// Reads `path` from disk and scans it. `report_as`, if non-empty, replaces
/// `path` in the findings (used to keep report paths repo-relative).
std::vector<Finding> scan_file(const std::string& path,
                               const std::string& report_as = "",
                               const Options& opt = Options());

/// Stable baseline key: "path|rule|fnv1a(trimmed excerpt)". Content-hashed
/// rather than line-numbered so unrelated edits above a baselined finding do
/// not invalidate it.
std::string baseline_key(const Finding& f);

/// Parses a baseline file: one key per line, '#' comments and blank lines
/// ignored. A missing file yields an empty set.
std::set<std::string> load_baseline(const std::string& path);

/// Marks findings whose baseline_key is in `baseline` as baselined.
void apply_baseline(std::vector<Finding>& findings,
                    const std::set<std::string>& baseline);

/// True if any finding is active (neither suppressed nor baselined) — the
/// process exit criterion.
bool has_active(const std::vector<Finding>& findings);

/// Machine-readable report: rule table, per-rule active counts, and every
/// finding (including suppressed/baselined ones, flagged as such). Output is
/// byte-deterministic: findings sorted by (file, line, rule), numbers
/// emitted via util::json_number.
std::string json_report(std::vector<Finding> findings);

/// FNV-1a 64-bit over `s` (exposed for tests).
std::uint64_t fnv1a(const std::string& s);

}  // namespace dimmer::lint
