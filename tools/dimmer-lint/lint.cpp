#include "lint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "index.hpp"
#include "scan.hpp"
#include "util/json.hpp"

namespace dimmer::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const char* kDetClock = "det-clock";
const char* kDetUmapIter = "det-umap-iter";
const char* kHotNoAlloc = "hot-no-alloc";
const char* kFpAccumulate = "fp-accumulate";
const char* kErrSwallow = "err-swallow";
const char* kNodiscardResult = "nodiscard-result";
const char* kSimdFpOrder = "simd-fp-order";
const char* kRngDiscipline = "rng-discipline";

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {kDetClock,
       "wall-clock / ambient randomness outside src/util/ (use forked "
       "util::Pcg32 and util/wallclock.hpp); with a call graph, also fires "
       "when a hot-path region reaches a clock read transitively"},
      {kDetUmapIter,
       "iteration over std::unordered_map/unordered_set: order is "
       "implementation-defined (use std::map, sorted keys, or lookups only)"},
      {kHotNoAlloc,
       "allocation or container growth inside a `dimmer-lint: hot-path` "
       "region (the zero-allocation flood loop); with a call graph, also "
       "fires when the region reaches an allocating function through any "
       "call chain"},
      {kFpAccumulate,
       "library floating-point reduction: make the summation order an "
       "explicit loop or annotate `dimmer-lint: fp-order-ok`"},
      {kErrSwallow,
       "catch-all or empty catch handler: record the error or rethrow"},
      {kNodiscardResult,
       "result struct defined without [[nodiscard]]: dropped results are how "
       "a bench silently diverges from what it reports"},
      {kSimdFpOrder,
       "cross-lane SIMD reduction inside a hot-path region: lane order "
       "changes floating-point results; keep reductions lanewise or annotate "
       "`dimmer-lint: simd-fp-order-ok`"},
      {kRngDiscipline,
       "RNG fork without a hash_u64-keyed tag, or a protocol-module "
       "(core/lwb/flood/rl) call into a fault/exp/bench function whose "
       "signature takes util::Pcg32: consumer randomness must never perturb "
       "protocol lockstep"},
  };
  return kRules;
}

bool is_rule(const std::string& id) {
  for (const Rule& r : rules())
    if (r.id == id) return true;
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Rule: det-clock
// ---------------------------------------------------------------------------

void rule_det_clock(const std::string& path, const std::vector<Tok>& toks,
                    const Options& opt, std::vector<Finding>* out) {
  std::string np = norm_path(path);
  for (const std::string& prefix : opt.clock_exempt_prefixes)
    if (has_prefix(np, prefix) || np.find("/" + prefix) != std::string::npos)
      return;
  const std::set<std::string>& bare = clock_bare_tokens();
  const std::set<std::string>& qual = clock_qual_tokens();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (bare.count(t)) {
      out->push_back({path, toks[i].line, kDetClock,
                      "`" + t +
                          "` outside src/util/: route timing through "
                          "util/wallclock.hpp and randomness through forked "
                          "util::Pcg32",
                      "", false, false});
      continue;
    }
    if (!qual.count(t)) continue;
    bool qualified = colon_qualified(toks, i);
    bool bare_call = tok_at(toks, i + 1) == "(" && !member_access(toks, i) &&
                     !qualified && tok_at(toks, i - 1) != ":";
    if (qualified || bare_call)
      out->push_back({path, toks[i].line, kDetClock,
                      "`" + t +
                          "()` outside src/util/: simulation code must not "
                          "read ambient time or randomness",
                      "", false, false});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule: det-umap-iter (namespace-scope: pass 1 reuses it for the
// may-iterate-unordered direct evidence, see scan.hpp)
// ---------------------------------------------------------------------------

void detail_rule_det_umap_iter(const std::string& path,
                               const std::vector<Tok>& toks,
                               std::vector<Finding>* out) {
  const std::set<std::string>& kUnorderedKw = unordered_tokens();
  // Pass A: `using Alias = ... unordered_map<...> ...;`
  std::set<std::string> aliases;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "using" || tok_at(toks, i + 2) != "=") continue;
    for (std::size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j)
      if (kUnorderedKw.count(toks[j].text)) {
        aliases.insert(toks[i + 1].text);
        break;
      }
  }
  auto is_unordered_type = [&](const std::string& t) {
    return kUnorderedKw.count(t) != 0 || aliases.count(t) != 0;
  };
  // Pass B: declared variable / member names of unordered type.
  std::set<std::string> vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_unordered_type(toks[i].text)) continue;
    std::size_t j = skip_template_args(toks, i + 1);
    if (j == i + 1 && kUnorderedKw.count(toks[i].text)) continue;  // no <...>
    while (tok_at(toks, j) == "&" || tok_at(toks, j) == "*" ||
           tok_at(toks, j) == "const")
      ++j;
    const std::string& name = tok_at(toks, j);
    if (!name.empty() && is_ident_char(name[0]) &&
        !std::isdigit(static_cast<unsigned char>(name[0])))
      vars.insert(name);
  }
  // Pass C: range-for over an unordered variable or temporary.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || tok_at(toks, i + 1) != "(") continue;
    int depth = 0;
    std::size_t close = i + 1, colon = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && toks[j].text == ":" && tok_at(toks, j - 1) != ":" &&
          tok_at(toks, j + 1) != ":" && colon == 0)
        colon = j;
    }
    if (colon == 0 || close <= colon) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      const std::string& t = toks[j].text;
      if (is_unordered_type(t) || vars.count(t)) {
        out->push_back({path, toks[i].line, kDetUmapIter,
                        "range-for over unordered container `" + t +
                            "`: iteration order is implementation-defined; "
                            "iterate sorted keys or use std::map",
                        "", false, false});
        break;
      }
    }
  }
  // Pass D: explicit begin()/cbegin() on an unordered variable.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!vars.count(toks[i].text)) continue;
    std::size_t m = 0;
    if (tok_at(toks, i + 1) == ".")
      m = i + 2;
    else if (tok_at(toks, i + 1) == "-" && tok_at(toks, i + 2) == ">")
      m = i + 3;
    else
      continue;
    const std::string& fn = tok_at(toks, m);
    if ((fn == "begin" || fn == "cbegin") && tok_at(toks, m + 1) == "(")
      out->push_back({path, toks[i].line, kDetUmapIter,
                      "iterator traversal of unordered container `" +
                          toks[i].text + "` (order is implementation-defined)",
                      "", false, false});
  }
}

namespace {

// ---------------------------------------------------------------------------
// Rule: hot-no-alloc
// ---------------------------------------------------------------------------

void rule_hot_no_alloc(const std::string& path, const std::vector<Tok>& toks,
                       const Directives& dir, std::vector<Finding>* out) {
  const std::set<std::string>& kGrowers = grower_tokens();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    int line = toks[i].line;
    if (line >= static_cast<int>(dir.hot.size()) || !dir.hot[line]) continue;
    const std::string& t = toks[i].text;
    if (t == "new") {
      out->push_back({path, line, kHotNoAlloc,
                      "`new` inside hot-path region: steady-state floods must "
                      "not allocate (use the caller-owned workspace)",
                      "", false, false});
    } else if (kGrowers.count(t) &&
               (tok_at(toks, i + 1) == "(" ||
                // templated form: make_unique<T>(...)
                tok_at(toks, skip_template_args(toks, i + 1)) == "(")) {
      out->push_back({path, line, kHotNoAlloc,
                      "`" + t +
                          "()` inside hot-path region may allocate; "
                          "pre-size buffers outside the region",
                      "", false, false});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: fp-accumulate
// ---------------------------------------------------------------------------

void rule_fp_accumulate(const std::string& path, const std::vector<Tok>& toks,
                        const Directives& dir, std::vector<Finding>* out) {
  static const std::set<std::string> kReducers = {
      "accumulate", "reduce", "transform_reduce", "inner_product"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!kReducers.count(toks[i].text) || tok_at(toks, i + 1) != "(") continue;
    int line = toks[i].line;
    // An fp-order-ok annotation (same line or the line above) reports the
    // call as suppressed rather than hiding it: annotated reductions stay
    // visible in the JSON report's suppressed count.
    bool ok = (line < static_cast<int>(dir.fp_ok.size()) && dir.fp_ok[line]) ||
              (line >= 2 && line - 1 < static_cast<int>(dir.fp_ok.size()) &&
               dir.fp_ok[line - 1]);
    out->push_back({path, line, kFpAccumulate,
                    "`" + toks[i].text +
                        "()` hides the floating-point reduction order; write "
                        "an explicit loop or annotate `// dimmer-lint: "
                        "fp-order-ok`",
                    "", /*suppressed=*/ok, false});
  }
}

// ---------------------------------------------------------------------------
// Rule: simd-fp-order
// ---------------------------------------------------------------------------
//
// The util/simd determinism contract (DESIGN.md §12) keeps every hot-path
// kernel *lanewise*: a value's result may not depend on its lane position.
// A horizontal (cross-lane) reduction breaks that — its summation order is
// the lane order, which changes with backend width — so any such call inside
// a `dimmer-lint: hot-path` region must carry an explicit
// `dimmer-lint: simd-fp-order-ok` annotation (same line or the line above)
// documenting why the order is acceptable. Annotated calls are reported as
// suppressed, keeping them visible in the JSON report.

void rule_simd_fp_order(const std::string& path, const std::vector<Tok>& toks,
                        const Directives& dir, std::vector<Finding>* out) {
  // Named lane reductions (ours or a library's), plus the raw intrinsics
  // (_mm*_hadd_*, _mm512_reduce_*, ...).
  static const std::set<std::string> kLaneReducers = {
      "reduce_add",     "reduce_sum", "reduce_max",
      "reduce_min",     "hadd",       "horizontal_add",
      "horizontal_sum", "horizontal_max", "horizontal_min"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    int line = toks[i].line;
    if (line >= static_cast<int>(dir.hot.size()) || !dir.hot[line]) continue;
    const std::string& t = toks[i].text;
    bool intrinsic = has_prefix(t, "_mm") &&
                     (t.find("hadd") != std::string::npos ||
                      t.find("reduce") != std::string::npos);
    if (!kLaneReducers.count(t) && !intrinsic) continue;
    if (tok_at(toks, i + 1) != "(") continue;
    bool ok =
        (line < static_cast<int>(dir.simd_ok.size()) && dir.simd_ok[line]) ||
        (line >= 2 && line - 1 < static_cast<int>(dir.simd_ok.size()) &&
         dir.simd_ok[line - 1]);
    out->push_back({path, line, kSimdFpOrder,
                    "`" + t +
                        "()` reduces across SIMD lanes inside a hot-path "
                        "region: lane order is backend-dependent; keep the "
                        "kernel lanewise or annotate `// dimmer-lint: "
                        "simd-fp-order-ok`",
                    "", /*suppressed=*/ok, false});
  }
}

// ---------------------------------------------------------------------------
// Rule: err-swallow
// ---------------------------------------------------------------------------

void rule_err_swallow(const std::string& path, const std::vector<Tok>& toks,
                      std::vector<Finding>* out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "catch" || tok_at(toks, i + 1) != "(") continue;
    std::size_t close = match_paren(toks, i + 1);
    if (close == 0) continue;
    bool catch_all = close == i + 5 && tok_at(toks, i + 2) == "." &&
                     tok_at(toks, i + 3) == "." && tok_at(toks, i + 4) == ".";
    if (catch_all) {
      out->push_back({path, toks[i].line, kErrSwallow,
                      "`catch (...)` can absorb any failure silently; catch "
                      "concrete types, or record the error and annotate",
                      "", false, false});
      continue;
    }
    if (tok_at(toks, close + 1) == "{" && tok_at(toks, close + 2) == "}")
      out->push_back({path, toks[i].line, kErrSwallow,
                      "empty catch handler swallows the error", "", false,
                      false});
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-result
// ---------------------------------------------------------------------------

void rule_nodiscard_result(const std::string& path,
                           const std::vector<Tok>& toks, const Options& opt,
                           std::vector<Finding>* out) {
  std::set<std::string> types(opt.nodiscard_types.begin(),
                              opt.nodiscard_types.end());
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "struct" && toks[i].text != "class") continue;
    std::size_t j = i + 1;
    bool nodiscard = false;
    while (tok_at(toks, j) == "[" && tok_at(toks, j + 1) == "[") {
      for (std::size_t k = j + 2;
           k < toks.size() && tok_at(toks, k) != "]"; ++k)
        if (toks[k].text == "nodiscard") nodiscard = true;
      while (j < toks.size() && toks[j].text != "]") ++j;
      j += 2;  // skip "]]"
    }
    const std::string& name = tok_at(toks, j);
    if (!types.count(name)) continue;
    const std::string& next = tok_at(toks, j + 1);
    if (next != "{" && next != ":") continue;  // fwd decl / variable / member
    if (!nodiscard)
      out->push_back({path, toks[i].line, kNodiscardResult,
                      "result type `" + name +
                          "` must be declared `struct [[nodiscard]] " + name +
                          "` so discarded results warn at every call site",
                      "", false, false});
  }
}

// ---------------------------------------------------------------------------
// Rule: rng-discipline
// ---------------------------------------------------------------------------

enum class Module { kProtocol, kConsumer, kOther };

Module module_of(const std::string& path) {
  std::string np = norm_path(path);
  auto in = [&](const char* prefix) {
    return has_prefix(np, prefix) ||
           np.find(std::string("/") + prefix) != std::string::npos;
  };
  if (in("src/core/") || in("src/lwb/") || in("src/flood/") || in("src/rl/"))
    return Module::kProtocol;
  if (in("src/fault/") || in("src/exp/") || in("bench/"))
    return Module::kConsumer;
  return Module::kOther;
}

void rule_rng_discipline(const std::string& path, const std::vector<Tok>& toks,
                         const CallGraph* graph, std::vector<Finding>* out) {
  // (a) Member fork calls must carry a hash_u64-keyed tag. Requiring member
  // access (`rng.fork(`, `rng->fork(`) excludes the POSIX process `::fork()`.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "fork" || !member_access(toks, i) ||
        tok_at(toks, i + 1) != "(")
      continue;
    std::size_t close = match_paren(toks, i + 1);
    bool keyed = false;
    for (std::size_t j = i + 2; close != 0 && j < close; ++j)
      if (toks[j].text == "hash_u64") keyed = true;
    if (!keyed)
      out->push_back(
          {path, toks[i].line, kRngDiscipline,
           "RNG `fork()` without a `hash_u64`-keyed tag: fork as "
           "`rng.fork(util::hash_u64(a, b))` so stream identity is a pure "
           "function of (parent seed, tag), never of draw order or loop "
           "position",
           "", false, false});
  }
  // (b) Protocol modules must not hand RNG streams into consumer-module
  // signatures. Name-resolved against the call graph: a call in
  // core/lwb/flood/rl to any indexed function defined under fault/, exp/ or
  // bench/ that takes a util::Pcg32 parameter is flagged, conservatively.
  if (graph == nullptr || module_of(path) != Module::kProtocol) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t.empty() || !is_ident_char(t[0]) ||
        std::isdigit(static_cast<unsigned char>(t[0])))
      continue;
    if (is_cpp_keyword(t) || tok_at(toks, i + 1) != "(") continue;
    const std::vector<int>* nodes = graph->lookup(t);
    if (nodes == nullptr) continue;
    for (int node : *nodes) {
      const FunctionDef& d = graph->nodes()[static_cast<std::size_t>(node)].def;
      if (module_of(d.file) != Module::kConsumer || !d.takes_pcg) continue;
      out->push_back(
          {path, toks[i].line, kRngDiscipline,
           "protocol-module RNG reference may flow into consumer signature: "
           "`" + graph->display(node) + "` (" + d.file + ":" +
               std::to_string(d.line) +
               ") takes util::Pcg32; fault/exp/bench randomness must stay "
               "out of protocol lockstep — pass a hash_u64-keyed fork the "
               "consumer owns instead",
           "", false, false});
    }
  }
}

// ---------------------------------------------------------------------------
// Transitive rules (pass 2 with the pass-1 call graph)
// ---------------------------------------------------------------------------

// The properties a hot-path region must not *reach* and the rule each one
// reports under. may-draw-rng is deliberately absent: floods draw protocol
// randomness by design, so reaching an RNG draw from a hot region is legal.
constexpr Prop kHotProps[3] = {Prop::kAllocate, Prop::kClock,
                               Prop::kUnorderedIter};

void rule_transitive_hot(const std::string& path, const std::vector<Tok>& toks,
                         const Directives& dir, const CallGraph& graph,
                         std::vector<Finding>* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    int line = toks[i].line;
    if (line >= static_cast<int>(dir.hot.size()) || !dir.hot[line]) continue;
    const std::string& t = toks[i].text;
    if (t.empty() || !is_ident_char(t[0]) ||
        std::isdigit(static_cast<unsigned char>(t[0])))
      continue;
    if (is_cpp_keyword(t)) continue;
    bool call = tok_at(toks, i + 1) == "(";
    bool ref = false;
    if (!call) {
      // Address-taken / bare function reference handed onward from the hot
      // region — the same widening the indexer applies, so a violation
      // cannot hide behind a function pointer.
      const std::string& prev = tok_at(toks, i - 1);
      const std::string& next = tok_at(toks, i + 1);
      bool addr = prev == "&" && i >= 2 &&
                  (tok_at(toks, i - 2) == "(" || tok_at(toks, i - 2) == "," ||
                   tok_at(toks, i - 2) == "=");
      bool bare = (prev == "(" || prev == "," || prev == "=") &&
                  (next == "," || next == ")" || next == ";");
      ref = addr || bare;
    }
    if (!call && !ref) continue;
    const std::vector<int>* nodes = graph.lookup(t);
    if (nodes == nullptr) continue;
    for (int node : *nodes) {
      for (Prop p : kHotProps) {
        if (!graph.has(node, p)) continue;
        out->push_back(
            {path, line, prop_rule(p),
             std::string("hot-path region reaches `") + prop_name(p) +
                 (call ? "` through call chain: "
                       : "` through referenced function: ") +
                 graph.chain(node, p),
             "", false, false});
      }
    }
  }
}

// Every `pure(<prop>)` trust annotation that actually masks a propagated
// property is reported as a suppressed finding at the definition: sanctioned
// transitive violations stay visible in the JSON report, never hidden.
void rule_trust_reports(const std::string& path, const CallGraph& graph,
                        std::vector<Finding>* out) {
  std::string np = norm_path(path);
  const std::vector<CallGraph::Node>& nodes = graph.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const FunctionDef& d = nodes[i].def;
    if (norm_path(d.file) != np) continue;
    for (int p = 0; p < kNumProps; ++p) {
      Prop pp = static_cast<Prop>(p);
      if (!d.trusted[p] || !graph.raw_has(static_cast<int>(i), pp)) continue;
      out->push_back(
          {path, d.line, prop_rule(pp),
           std::string("`pure(") + prop_name(pp) +
               ")` trust annotation on `" + graph.display(static_cast<int>(i)) +
               "` masks: " + graph.chain(static_cast<int>(i), pp),
           "", /*suppressed=*/true, false});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Finding> scan_source(const std::string& path,
                                 const std::string& contents,
                                 const Options& opt, const CallGraph* graph) {
  std::vector<LineInfo> lines = split_channels(contents);
  std::vector<Tok> toks = tokenize(lines);
  Directives dir = scan_directives(path, lines);

  std::vector<Finding> out;
  rule_det_clock(path, toks, opt, &out);
  detail_rule_det_umap_iter(path, toks, &out);
  rule_hot_no_alloc(path, toks, dir, &out);
  out.insert(out.end(), dir.region_errors.begin(), dir.region_errors.end());
  rule_fp_accumulate(path, toks, dir, &out);
  rule_simd_fp_order(path, toks, dir, &out);
  rule_err_swallow(path, toks, &out);
  rule_nodiscard_result(path, toks, opt, &out);
  rule_rng_discipline(path, toks, graph, &out);
  if (graph != nullptr) {
    rule_transitive_hot(path, toks, dir, *graph, &out);
    rule_trust_reports(path, *graph, &out);
  }

  // Raw source lines (pre-blanking) for excerpts.
  std::vector<std::string> raw;
  {
    std::stringstream ss(contents);
    std::string l;
    while (std::getline(ss, l)) raw.push_back(l);
  }
  for (Finding& f : out) {
    if (f.line >= 1 && f.line <= static_cast<int>(raw.size()))
      f.excerpt = trimmed_line(raw[f.line - 1]);
    // ||: fp-accumulate pre-marks fp-order-ok annotated calls as suppressed.
    f.suppressed = f.suppressed || line_suppressed(lines, f.line, f.rule);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  // One diagnostic per (line, rule): a single bad line should not dominate
  // the report.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.line == b.line && a.rule == b.rule;
                        }),
            out.end());
  return out;
}

std::vector<Finding> scan_file(const std::string& path,
                               const std::string& report_as,
                               const Options& opt, const CallGraph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Finding f{report_as.empty() ? path : report_as, 0, "io",
              "cannot open file", "", false, false};
    f.parse_error = true;
    return {f};
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return scan_source(report_as.empty() ? path : report_as, ss.str(), opt,
                     graph);
}

std::vector<Finding> scan_sources(const std::vector<SourceFile>& files,
                                  const Options& opt, const CallGraph* graph,
                                  int jobs) {
  if (jobs < 1) jobs = 1;
  std::vector<std::vector<Finding>> slots(files.size());
  std::atomic<std::size_t> next{0};
  auto work = [&]() {
    for (;;) {
      std::size_t i = next.fetch_add(1);
      if (i >= files.size()) return;
      slots[i] = scan_source(files[i].path, files[i].contents, opt, graph);
    }
  };
  std::size_t n = std::min<std::size_t>(static_cast<std::size_t>(jobs),
                                        files.size());
  if (n <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (std::size_t w = 0; w < n; ++w) pool.emplace_back(work);
    for (std::thread& th : pool) th.join();
  }
  // Merge in input order: the report is byte-identical for any `jobs`.
  std::vector<Finding> out;
  for (std::vector<Finding>& s : slots)
    out.insert(out.end(), std::make_move_iterator(s.begin()),
               std::make_move_iterator(s.end()));
  return out;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string normalize_ws(const std::string& s) {
  std::string out;
  bool pending = false;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      pending = !out.empty();
      continue;
    }
    if (pending) out += ' ';
    pending = false;
    out += c;
  }
  return out;
}

std::string baseline_key(const Finding& f) {
  std::ostringstream os;
  os << norm_path(f.file) << "|" << f.rule << "|" << std::hex
     << fnv1a(normalize_ws(f.excerpt));
  return os.str();
}

std::set<std::string> load_baseline(const std::string& path) {
  std::set<std::string> keys;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::string t = trimmed_line(line);
    if (t.empty() || t[0] == '#') continue;
    keys.insert(t);
  }
  return keys;
}

void apply_baseline(std::vector<Finding>& findings,
                    const std::set<std::string>& baseline) {
  for (Finding& f : findings)
    if (!f.suppressed && baseline.count(baseline_key(f))) f.baselined = true;
}

bool has_active(const std::vector<Finding>& findings) {
  for (const Finding& f : findings)
    if (!f.suppressed && !f.baselined) return true;
  return false;
}

bool write_file_atomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable.
  std::size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

bool update_baseline(const std::vector<Finding>& findings,
                     const std::string& path) {
  for (const Finding& f : findings)
    if (f.parse_error) return false;
  // Everything unsuppressed goes in: active findings get accepted, findings
  // already baselined keep their entry. std::set sorts and dedups.
  std::set<std::string> keys;
  for (const Finding& f : findings)
    if (!f.suppressed) keys.insert(baseline_key(f));
  std::ostringstream os;
  os << "# dimmer-lint baseline — regenerate with `dimmer-lint "
        "--update-baseline`.\n"
     << "# One `path|rule|hash` key per line; the hash covers the "
        "whitespace-normalized\n"
     << "# finding excerpt, so pure reformatting does not churn keys.\n";
  for (const std::string& k : keys) os << k << "\n";
  return write_file_atomic(path, os.str());
}

std::string json_report(std::vector<Finding> findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  std::map<std::string, int> counts;
  for (const Rule& r : rules()) counts[r.id] = 0;
  int n_active = 0, n_suppressed = 0, n_baselined = 0;
  for (const Finding& f : findings) {
    if (f.suppressed)
      ++n_suppressed;
    else if (f.baselined)
      ++n_baselined;
    else {
      ++n_active;
      ++counts[f.rule];
    }
  }
  std::ostringstream os;
  os << "{\n  \"tool\": \"dimmer-lint\",\n  \"version\": 2,\n  \"rules\": [\n";
  for (std::size_t i = 0; i < rules().size(); ++i) {
    const Rule& r = rules()[i];
    os << "    {\"id\": " << util::json_quote(r.id)
       << ", \"summary\": " << util::json_quote(r.summary) << "}"
       << (i + 1 < rules().size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"counts\": {";
  bool first = true;
  for (const auto& [id, n] : counts) {
    os << (first ? "" : ", ") << util::json_quote(id) << ": " << n;
    first = false;
  }
  os << "},\n";
  os << "  \"total_active\": " << n_active << ",\n";
  os << "  \"total_suppressed\": " << n_suppressed << ",\n";
  os << "  \"total_baselined\": " << n_baselined << ",\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": " << util::json_quote(norm_path(f.file))
       << ", \"line\": " << f.line << ", \"rule\": " << util::json_quote(f.rule)
       << ",\n     \"message\": " << util::json_quote(f.message)
       << ",\n     \"excerpt\": " << util::json_quote(f.excerpt)
       << ", \"suppressed\": " << (f.suppressed ? "true" : "false")
       << ", \"baselined\": " << (f.baselined ? "true" : "false") << "}";
  }
  os << (findings.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace dimmer::lint
