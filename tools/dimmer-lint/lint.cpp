#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "util/json.hpp"

namespace dimmer::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const char* kDetClock = "det-clock";
const char* kDetUmapIter = "det-umap-iter";
const char* kHotNoAlloc = "hot-no-alloc";
const char* kFpAccumulate = "fp-accumulate";
const char* kErrSwallow = "err-swallow";
const char* kNodiscardResult = "nodiscard-result";
const char* kSimdFpOrder = "simd-fp-order";

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {kDetClock,
       "wall-clock / ambient randomness outside src/util/ (use forked "
       "util::Pcg32 and util/wallclock.hpp)"},
      {kDetUmapIter,
       "iteration over std::unordered_map/unordered_set: order is "
       "implementation-defined (use std::map, sorted keys, or lookups only)"},
      {kHotNoAlloc,
       "allocation or container growth inside a `dimmer-lint: hot-path` "
       "region (the zero-allocation flood loop)"},
      {kFpAccumulate,
       "library floating-point reduction: make the summation order an "
       "explicit loop or annotate `dimmer-lint: fp-order-ok`"},
      {kErrSwallow,
       "catch-all or empty catch handler: record the error or rethrow"},
      {kNodiscardResult,
       "result struct defined without [[nodiscard]]: dropped results are how "
       "a bench silently diverges from what it reports"},
      {kSimdFpOrder,
       "cross-lane SIMD reduction inside a hot-path region: lane order "
       "changes floating-point results; keep reductions lanewise or annotate "
       "`dimmer-lint: simd-fp-order-ok`"},
  };
  return kRules;
}

bool is_rule(const std::string& id) {
  for (const Rule& r : rules())
    if (r.id == id) return true;
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Phase 1: split source into per-line code and comment channels.
//
// String and character literal *contents* are blanked (quotes kept) so token
// scans never fire on, e.g., a log message mentioning "mt19937"; comment text
// is captured separately because that is where the directive and suppression
// syntax lives. Columns are preserved (blanking writes spaces).
// ---------------------------------------------------------------------------

struct LineInfo {
  std::string code;
  std::string comment;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<LineInfo> split_channels(const std::string& src) {
  enum class St { kCode, kLineComment, kBlockComment, kStr, kChr, kRawStr };
  std::vector<LineInfo> lines(1);
  St st = St::kCode;
  std::string raw_end;  // ")delim\"" terminator while in kRawStr
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char n = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      // Unterminated string/char literals do not really span lines in valid
      // C++; reset so one bad line cannot blank the rest of the file.
      if (st == St::kStr || st == St::kChr) st = St::kCode;
      lines.emplace_back();
      continue;
    }
    LineInfo& line = lines.back();
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlockComment;
          line.code += "  ";
          ++i;
        } else if (c == '"') {
          bool raw = !line.code.empty() && line.code.back() == 'R';
          if (raw) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(' && src[j] != '\n')
              delim += src[j++];
            raw_end = ")" + delim + "\"";
            st = St::kRawStr;
            line.code += '"';
            i = j;  // consume up to and including '('
          } else {
            st = St::kStr;
            line.code += '"';
          }
        } else if (c == '\'') {
          // Digit separator (1'000) vs character literal.
          bool sep = !line.code.empty() &&
                     std::isalnum(static_cast<unsigned char>(line.code.back())) &&
                     std::isalnum(static_cast<unsigned char>(n));
          if (sep) {
            line.code += c;
          } else {
            st = St::kChr;
            line.code += '\'';
          }
        } else {
          line.code += c;
        }
        break;
      case St::kLineComment:
        line.comment += c;
        break;
      case St::kBlockComment:
        if (c == '*' && n == '/') {
          st = St::kCode;
          ++i;
        } else {
          line.comment += c;
        }
        break;
      case St::kStr:
        if (c == '\\') {
          line.code += ' ';
          if (n != '\0' && n != '\n') {
            line.code += ' ';
            ++i;
          }
        } else if (c == '"') {
          line.code += '"';
          st = St::kCode;
        } else {
          line.code += ' ';
        }
        break;
      case St::kChr:
        if (c == '\\') {
          line.code += ' ';
          if (n != '\0' && n != '\n') {
            line.code += ' ';
            ++i;
          }
        } else if (c == '\'') {
          line.code += '\'';
          st = St::kCode;
        } else {
          line.code += ' ';
        }
        break;
      case St::kRawStr:
        if (src.compare(i, raw_end.size(), raw_end) == 0) {
          line.code += '"';
          i += raw_end.size() - 1;
          st = St::kCode;
        } else {
          line.code += c == '\t' ? '\t' : ' ';
        }
        break;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Phase 2: token stream (identifiers/numbers as words, everything else as
// single-character punctuation).
// ---------------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;  // 1-based
};

std::vector<Tok> tokenize(const std::vector<LineInfo>& lines) {
  std::vector<Tok> toks;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    std::size_t i = 0;
    while (i < code.size()) {
      char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (is_ident_char(c)) {
        std::size_t j = i;
        while (j < code.size() && is_ident_char(code[j])) ++j;
        toks.push_back({code.substr(i, j - i), static_cast<int>(li + 1)});
        i = j;
      } else {
        toks.push_back({std::string(1, c), static_cast<int>(li + 1)});
        ++i;
      }
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Directives and suppressions (live in the comment channel)
// ---------------------------------------------------------------------------

struct Directives {
  std::vector<bool> hot;    // per line (1-based index): inside hot-path region
  std::vector<bool> fp_ok;  // line carries `dimmer-lint: fp-order-ok`
  std::vector<bool> simd_ok;  // line carries `dimmer-lint: simd-fp-order-ok`
  std::vector<Finding> region_errors;  // unbalanced begin/end
};

bool comment_has(const std::string& comment, const std::string& what) {
  return comment.find(what) != std::string::npos;
}

Directives scan_directives(const std::string& path,
                           const std::vector<LineInfo>& lines) {
  Directives d;
  d.hot.assign(lines.size() + 2, false);
  d.fp_ok.assign(lines.size() + 2, false);
  d.simd_ok.assign(lines.size() + 2, false);
  int begin_line = -1;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& c = lines[li].comment;
    int ln = static_cast<int>(li + 1);
    if (comment_has(c, "dimmer-lint: fp-order-ok")) d.fp_ok[li + 1] = true;
    if (comment_has(c, "dimmer-lint: simd-fp-order-ok"))
      d.simd_ok[li + 1] = true;
    if (comment_has(c, "dimmer-lint: hot-path begin")) {
      if (begin_line >= 0)
        d.region_errors.push_back({path, ln, kHotNoAlloc,
                                   "nested `hot-path begin` (previous region "
                                   "opened on line " +
                                       std::to_string(begin_line) + ")",
                                   "", false, false});
      begin_line = ln;
    } else if (comment_has(c, "dimmer-lint: hot-path end")) {
      if (begin_line < 0) {
        d.region_errors.push_back({path, ln, kHotNoAlloc,
                                   "`hot-path end` without a matching begin",
                                   "", false, false});
      } else {
        for (int k = begin_line + 1; k < ln; ++k) d.hot[k] = true;
        begin_line = -1;
      }
    }
  }
  if (begin_line >= 0)
    d.region_errors.push_back(
        {path, begin_line, kHotNoAlloc,
         "unterminated `hot-path begin` region", "", false, false});
  return d;
}

// Parses "NOLINT-DIMMER" / "NOLINTNEXTLINE-DIMMER" with an optional
// parenthesized rule list out of one line's comment text. Returns true if
// `rule` is suppressed by `marker` in `comment`.
bool marker_suppresses(const std::string& comment, const std::string& marker,
                       const std::string& rule) {
  std::size_t pos = comment.find(marker);
  if (pos == std::string::npos) return false;
  std::size_t after = pos + marker.size();
  // Bare marker (no rule list) suppresses everything.
  if (after >= comment.size() || comment[after] != '(') return true;
  std::size_t close = comment.find(')', after);
  std::string list = comment.substr(
      after + 1, close == std::string::npos ? std::string::npos
                                            : close - after - 1);
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t b = item.find_first_not_of(" \t");
    std::size_t e = item.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    if (item.substr(b, e - b + 1) == rule) return true;
  }
  return false;
}

bool line_suppressed(const std::vector<LineInfo>& lines, int line,
                     const std::string& rule) {
  // NOLINTNEXTLINE-DIMMER contains no "NOLINT-DIMMER" substring, so the two
  // markers cannot shadow each other.
  if (line >= 1 && line <= static_cast<int>(lines.size()) &&
      marker_suppresses(lines[line - 1].comment, "NOLINT-DIMMER", rule))
    return true;
  if (line >= 2 &&
      marker_suppresses(lines[line - 2].comment, "NOLINTNEXTLINE-DIMMER",
                        rule))
    return true;
  return false;
}

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

const std::string& tok_at(const std::vector<Tok>& t, std::size_t i) {
  static const std::string kEmpty;
  return i < t.size() ? t[i].text : kEmpty;
}

// True if toks[i] is preceded by "::" (with or without a leading "std").
bool colon_qualified(const std::vector<Tok>& t, std::size_t i) {
  return i >= 2 && tok_at(t, i - 1) == ":" && tok_at(t, i - 2) == ":";
}

// True if toks[i] is accessed as a member (`.x`, `->x`).
bool member_access(const std::vector<Tok>& t, std::size_t i) {
  if (i >= 1 && tok_at(t, i - 1) == ".") return true;
  return i >= 2 && tok_at(t, i - 1) == ">" && tok_at(t, i - 2) == "-";
}

// Index just past a balanced template argument list starting at toks[i]
// (which must be "<"); returns i if it does not look like one.
std::size_t skip_template_args(const std::vector<Tok>& t, std::size_t i) {
  if (tok_at(t, i) != "<") return i;
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      if (--depth == 0) return j + 1;
    }
    if (t[j].text == ";" || t[j].text == "{") break;  // not a template list
  }
  return i;
}

std::string trimmed_line(const std::string& src_line) {
  std::size_t b = src_line.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = src_line.find_last_not_of(" \t\r");
  return src_line.substr(b, e - b + 1);
}

bool has_prefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

// Normalizes separators and strips leading "./" for prefix matching.
std::string norm_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  while (has_prefix(p, "./")) p.erase(0, 2);
  return p;
}

// ---------------------------------------------------------------------------
// Rule: det-clock
// ---------------------------------------------------------------------------

void rule_det_clock(const std::string& path, const std::vector<Tok>& toks,
                    const Options& opt, std::vector<Finding>* out) {
  std::string np = norm_path(path);
  for (const std::string& prefix : opt.clock_exempt_prefixes)
    if (has_prefix(np, prefix) || np.find("/" + prefix) != std::string::npos)
      return;
  static const std::set<std::string> kBareBad = {
      "steady_clock",   "system_clock",  "high_resolution_clock",
      "random_device",  "mt19937",       "mt19937_64",
      "minstd_rand",    "minstd_rand0",  "default_random_engine",
      "ranlux24_base",  "ranlux48_base", "knuth_b",
      "gettimeofday",   "timespec_get",  "localtime",
      "gmtime",         "clock_gettime",
      // Sleeps: a thread that waits out wall time is reading the ambient
      // clock with extra steps. Supervision code (the campaign engine's
      // respawn backoff and poll loops) goes through util::sleep_seconds,
      // which lives in the audited src/util/ seam like every clock read.
      "sleep_for",      "sleep_until",   "usleep",
      "nanosleep"};
  // Short, collision-prone names: only flagged when "::"-qualified or used
  // as a bare call (`time(nullptr)`), never as members of other objects.
  static const std::set<std::string> kQualBad = {"rand", "srand", "time",
                                                 "clock", "sleep"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (kBareBad.count(t)) {
      out->push_back({path, toks[i].line, kDetClock,
                      "`" + t +
                          "` outside src/util/: route timing through "
                          "util/wallclock.hpp and randomness through forked "
                          "util::Pcg32",
                      "", false, false});
      continue;
    }
    if (!kQualBad.count(t)) continue;
    bool qualified = colon_qualified(toks, i);
    bool bare_call = tok_at(toks, i + 1) == "(" && !member_access(toks, i) &&
                     !qualified && tok_at(toks, i - 1) != ":";
    if (qualified || bare_call)
      out->push_back({path, toks[i].line, kDetClock,
                      "`" + t +
                          "()` outside src/util/: simulation code must not "
                          "read ambient time or randomness",
                      "", false, false});
  }
}

// ---------------------------------------------------------------------------
// Rule: det-umap-iter
// ---------------------------------------------------------------------------

void rule_det_umap_iter(const std::string& path, const std::vector<Tok>& toks,
                        std::vector<Finding>* out) {
  static const std::set<std::string> kUnorderedKw = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  // Pass A: `using Alias = ... unordered_map<...> ...;`
  std::set<std::string> aliases;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "using" || tok_at(toks, i + 2) != "=") continue;
    for (std::size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j)
      if (kUnorderedKw.count(toks[j].text)) {
        aliases.insert(toks[i + 1].text);
        break;
      }
  }
  auto is_unordered_type = [&](const std::string& t) {
    return kUnorderedKw.count(t) != 0 || aliases.count(t) != 0;
  };
  // Pass B: declared variable / member names of unordered type.
  std::set<std::string> vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_unordered_type(toks[i].text)) continue;
    std::size_t j = skip_template_args(toks, i + 1);
    if (j == i + 1 && kUnorderedKw.count(toks[i].text)) continue;  // no <...>
    while (tok_at(toks, j) == "&" || tok_at(toks, j) == "*" ||
           tok_at(toks, j) == "const")
      ++j;
    const std::string& name = tok_at(toks, j);
    if (!name.empty() && is_ident_char(name[0]) &&
        !std::isdigit(static_cast<unsigned char>(name[0])))
      vars.insert(name);
  }
  // Pass C: range-for over an unordered variable or temporary.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || tok_at(toks, i + 1) != "(") continue;
    int depth = 0;
    std::size_t close = i + 1, colon = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && toks[j].text == ":" && tok_at(toks, j - 1) != ":" &&
          tok_at(toks, j + 1) != ":" && colon == 0)
        colon = j;
    }
    if (colon == 0 || close <= colon) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      const std::string& t = toks[j].text;
      if (is_unordered_type(t) || vars.count(t)) {
        out->push_back({path, toks[i].line, kDetUmapIter,
                        "range-for over unordered container `" + t +
                            "`: iteration order is implementation-defined; "
                            "iterate sorted keys or use std::map",
                        "", false, false});
        break;
      }
    }
  }
  // Pass D: explicit begin()/cbegin() on an unordered variable.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!vars.count(toks[i].text)) continue;
    std::size_t m = 0;
    if (tok_at(toks, i + 1) == ".")
      m = i + 2;
    else if (tok_at(toks, i + 1) == "-" && tok_at(toks, i + 2) == ">")
      m = i + 3;
    else
      continue;
    const std::string& fn = tok_at(toks, m);
    if ((fn == "begin" || fn == "cbegin") && tok_at(toks, m + 1) == "(")
      out->push_back({path, toks[i].line, kDetUmapIter,
                      "iterator traversal of unordered container `" +
                          toks[i].text + "` (order is implementation-defined)",
                      "", false, false});
  }
}

// ---------------------------------------------------------------------------
// Rule: hot-no-alloc
// ---------------------------------------------------------------------------

void rule_hot_no_alloc(const std::string& path, const std::vector<Tok>& toks,
                       const Directives& dir, std::vector<Finding>* out) {
  static const std::set<std::string> kGrowers = {
      "make_unique",  "make_shared",   "push_back", "emplace_back",
      "push_front",   "emplace_front", "emplace",   "insert",
      "resize",       "reserve",       "assign",    "append"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    int line = toks[i].line;
    if (line >= static_cast<int>(dir.hot.size()) || !dir.hot[line]) continue;
    const std::string& t = toks[i].text;
    if (t == "new") {
      out->push_back({path, line, kHotNoAlloc,
                      "`new` inside hot-path region: steady-state floods must "
                      "not allocate (use the caller-owned workspace)",
                      "", false, false});
    } else if (kGrowers.count(t) &&
               (tok_at(toks, i + 1) == "(" ||
                // templated form: make_unique<T>(...)
                tok_at(toks, skip_template_args(toks, i + 1)) == "(")) {
      out->push_back({path, line, kHotNoAlloc,
                      "`" + t +
                          "()` inside hot-path region may allocate; "
                          "pre-size buffers outside the region",
                      "", false, false});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: fp-accumulate
// ---------------------------------------------------------------------------

void rule_fp_accumulate(const std::string& path, const std::vector<Tok>& toks,
                        const Directives& dir, std::vector<Finding>* out) {
  static const std::set<std::string> kReducers = {
      "accumulate", "reduce", "transform_reduce", "inner_product"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!kReducers.count(toks[i].text) || tok_at(toks, i + 1) != "(") continue;
    int line = toks[i].line;
    // An fp-order-ok annotation (same line or the line above) reports the
    // call as suppressed rather than hiding it: annotated reductions stay
    // visible in the JSON report's suppressed count.
    bool ok = (line < static_cast<int>(dir.fp_ok.size()) && dir.fp_ok[line]) ||
              (line >= 2 && line - 1 < static_cast<int>(dir.fp_ok.size()) &&
               dir.fp_ok[line - 1]);
    out->push_back({path, line, kFpAccumulate,
                    "`" + toks[i].text +
                        "()` hides the floating-point reduction order; write "
                        "an explicit loop or annotate `// dimmer-lint: "
                        "fp-order-ok`",
                    "", /*suppressed=*/ok, false});
  }
}

// ---------------------------------------------------------------------------
// Rule: simd-fp-order
// ---------------------------------------------------------------------------
//
// The util/simd determinism contract (DESIGN.md §12) keeps every hot-path
// kernel *lanewise*: a value's result may not depend on its lane position.
// A horizontal (cross-lane) reduction breaks that — its summation order is
// the lane order, which changes with backend width — so any such call inside
// a `dimmer-lint: hot-path` region must carry an explicit
// `dimmer-lint: simd-fp-order-ok` annotation (same line or the line above)
// documenting why the order is acceptable. Annotated calls are reported as
// suppressed, keeping them visible in the JSON report.

void rule_simd_fp_order(const std::string& path, const std::vector<Tok>& toks,
                        const Directives& dir, std::vector<Finding>* out) {
  // Named lane reductions (ours or a library's), plus the raw intrinsics
  // (_mm*_hadd_*, _mm512_reduce_*, ...).
  static const std::set<std::string> kLaneReducers = {
      "reduce_add",     "reduce_sum", "reduce_max",
      "reduce_min",     "hadd",       "horizontal_add",
      "horizontal_sum", "horizontal_max", "horizontal_min"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    int line = toks[i].line;
    if (line >= static_cast<int>(dir.hot.size()) || !dir.hot[line]) continue;
    const std::string& t = toks[i].text;
    bool intrinsic = has_prefix(t, "_mm") &&
                     (t.find("hadd") != std::string::npos ||
                      t.find("reduce") != std::string::npos);
    if (!kLaneReducers.count(t) && !intrinsic) continue;
    if (tok_at(toks, i + 1) != "(") continue;
    bool ok =
        (line < static_cast<int>(dir.simd_ok.size()) && dir.simd_ok[line]) ||
        (line >= 2 && line - 1 < static_cast<int>(dir.simd_ok.size()) &&
         dir.simd_ok[line - 1]);
    out->push_back({path, line, kSimdFpOrder,
                    "`" + t +
                        "()` reduces across SIMD lanes inside a hot-path "
                        "region: lane order is backend-dependent; keep the "
                        "kernel lanewise or annotate `// dimmer-lint: "
                        "simd-fp-order-ok`",
                    "", /*suppressed=*/ok, false});
  }
}

// ---------------------------------------------------------------------------
// Rule: err-swallow
// ---------------------------------------------------------------------------

void rule_err_swallow(const std::string& path, const std::vector<Tok>& toks,
                      std::vector<Finding>* out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "catch" || tok_at(toks, i + 1) != "(") continue;
    int depth = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == 0) continue;
    bool catch_all = close == i + 5 && tok_at(toks, i + 2) == "." &&
                     tok_at(toks, i + 3) == "." && tok_at(toks, i + 4) == ".";
    if (catch_all) {
      out->push_back({path, toks[i].line, kErrSwallow,
                      "`catch (...)` can absorb any failure silently; catch "
                      "concrete types, or record the error and annotate",
                      "", false, false});
      continue;
    }
    if (tok_at(toks, close + 1) == "{" && tok_at(toks, close + 2) == "}")
      out->push_back({path, toks[i].line, kErrSwallow,
                      "empty catch handler swallows the error", "", false,
                      false});
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-result
// ---------------------------------------------------------------------------

void rule_nodiscard_result(const std::string& path,
                           const std::vector<Tok>& toks, const Options& opt,
                           std::vector<Finding>* out) {
  std::set<std::string> types(opt.nodiscard_types.begin(),
                              opt.nodiscard_types.end());
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "struct" && toks[i].text != "class") continue;
    std::size_t j = i + 1;
    bool nodiscard = false;
    while (tok_at(toks, j) == "[" && tok_at(toks, j + 1) == "[") {
      for (std::size_t k = j + 2;
           k < toks.size() && tok_at(toks, k) != "]"; ++k)
        if (toks[k].text == "nodiscard") nodiscard = true;
      while (j < toks.size() && toks[j].text != "]") ++j;
      j += 2;  // skip "]]"
    }
    const std::string& name = tok_at(toks, j);
    if (!types.count(name)) continue;
    const std::string& next = tok_at(toks, j + 1);
    if (next != "{" && next != ":") continue;  // fwd decl / variable / member
    if (!nodiscard)
      out->push_back({path, toks[i].line, kNodiscardResult,
                      "result type `" + name +
                          "` must be declared `struct [[nodiscard]] " + name +
                          "` so discarded results warn at every call site",
                      "", false, false});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Finding> scan_source(const std::string& path,
                                 const std::string& contents,
                                 const Options& opt) {
  std::vector<LineInfo> lines = split_channels(contents);
  std::vector<Tok> toks = tokenize(lines);
  Directives dir = scan_directives(path, lines);

  std::vector<Finding> out;
  rule_det_clock(path, toks, opt, &out);
  rule_det_umap_iter(path, toks, &out);
  rule_hot_no_alloc(path, toks, dir, &out);
  out.insert(out.end(), dir.region_errors.begin(), dir.region_errors.end());
  rule_fp_accumulate(path, toks, dir, &out);
  rule_simd_fp_order(path, toks, dir, &out);
  rule_err_swallow(path, toks, &out);
  rule_nodiscard_result(path, toks, opt, &out);

  // Raw source lines (pre-blanking) for excerpts.
  std::vector<std::string> raw;
  {
    std::stringstream ss(contents);
    std::string l;
    while (std::getline(ss, l)) raw.push_back(l);
  }
  for (Finding& f : out) {
    if (f.line >= 1 && f.line <= static_cast<int>(raw.size()))
      f.excerpt = trimmed_line(raw[f.line - 1]);
    // ||: fp-accumulate pre-marks fp-order-ok annotated calls as suppressed.
    f.suppressed = f.suppressed || line_suppressed(lines, f.line, f.rule);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  // One diagnostic per (line, rule): a single bad line should not dominate
  // the report.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.line == b.line && a.rule == b.rule;
                        }),
            out.end());
  return out;
}

std::vector<Finding> scan_file(const std::string& path,
                               const std::string& report_as,
                               const Options& opt) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{report_as.empty() ? path : report_as, 0, "io",
             "cannot open file", "", false, false}};
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return scan_source(report_as.empty() ? path : report_as, ss.str(), opt);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string baseline_key(const Finding& f) {
  std::ostringstream os;
  os << norm_path(f.file) << "|" << f.rule << "|" << std::hex
     << fnv1a(f.excerpt);
  return os.str();
}

std::set<std::string> load_baseline(const std::string& path) {
  std::set<std::string> keys;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::string t = trimmed_line(line);
    if (t.empty() || t[0] == '#') continue;
    keys.insert(t);
  }
  return keys;
}

void apply_baseline(std::vector<Finding>& findings,
                    const std::set<std::string>& baseline) {
  for (Finding& f : findings)
    if (!f.suppressed && baseline.count(baseline_key(f))) f.baselined = true;
}

bool has_active(const std::vector<Finding>& findings) {
  for (const Finding& f : findings)
    if (!f.suppressed && !f.baselined) return true;
  return false;
}

std::string json_report(std::vector<Finding> findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  std::map<std::string, int> counts;
  for (const Rule& r : rules()) counts[r.id] = 0;
  int n_active = 0, n_suppressed = 0, n_baselined = 0;
  for (const Finding& f : findings) {
    if (f.suppressed)
      ++n_suppressed;
    else if (f.baselined)
      ++n_baselined;
    else {
      ++n_active;
      ++counts[f.rule];
    }
  }
  std::ostringstream os;
  os << "{\n  \"tool\": \"dimmer-lint\",\n  \"version\": 1,\n  \"rules\": [\n";
  for (std::size_t i = 0; i < rules().size(); ++i) {
    const Rule& r = rules()[i];
    os << "    {\"id\": " << util::json_quote(r.id)
       << ", \"summary\": " << util::json_quote(r.summary) << "}"
       << (i + 1 < rules().size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"counts\": {";
  bool first = true;
  for (const auto& [id, n] : counts) {
    os << (first ? "" : ", ") << util::json_quote(id) << ": " << n;
    first = false;
  }
  os << "},\n";
  os << "  \"total_active\": " << n_active << ",\n";
  os << "  \"total_suppressed\": " << n_suppressed << ",\n";
  os << "  \"total_baselined\": " << n_baselined << ",\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": " << util::json_quote(norm_path(f.file))
       << ", \"line\": " << f.line << ", \"rule\": " << util::json_quote(f.rule)
       << ",\n     \"message\": " << util::json_quote(f.message)
       << ",\n     \"excerpt\": " << util::json_quote(f.excerpt)
       << ", \"suppressed\": " << (f.suppressed ? "true" : "false")
       << ", \"baselined\": " << (f.baselined ? "true" : "false") << "}";
  }
  os << (findings.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace dimmer::lint
