#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "scan.hpp"

namespace dimmer::lint {

namespace {

const char* kPropNames[kNumProps] = {"may-allocate", "may-touch-clock",
                                     "may-iterate-unordered", "may-draw-rng"};
const char* kPropRules[kNumProps] = {"hot-no-alloc", "det-clock",
                                     "det-umap-iter", "rng-discipline"};

}  // namespace

const char* prop_name(Prop p) { return kPropNames[static_cast<int>(p)]; }
const char* prop_rule(Prop p) { return kPropRules[static_cast<int>(p)]; }

bool parse_prop(const std::string& s, Prop* out) {
  for (int i = 0; i < kNumProps; ++i) {
    if (s == kPropNames[i]) {
      *out = static_cast<Prop>(i);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Function extraction
// ---------------------------------------------------------------------------

namespace {

// One entry of the namespace/class scope stack.
struct ScopeEntry {
  std::string name;
  int depth = 0;  // brace depth *inside* the scope
};

// Tokens allowed between a definition's ")" and its "{": cv/ref qualifiers,
// noexcept(...), attributes, trailing return types. Anything else (";", "=",
// ",") means declaration, not definition.
bool is_post_paren_token(const std::string& t) {
  if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
      t == "mutable" || t == "&" || t == "-" || t == ">" || t == "*" ||
      t == ":" || t == "<" || t == "[" || t == "]" || t == "(" || t == ")")
    return true;
  return !t.empty() && is_ident_char(t[0]);
}

// Scans forward from just past the parameter list's ")" looking for the
// body's "{". Handles constructor initializer lists (`: a_(x), b_{y} {`),
// `noexcept(...)` and trailing return types. Returns the token index of the
// body "{", or 0 if this is not a definition.
std::size_t find_body_open(const std::vector<Tok>& toks, std::size_t after) {
  int paren = 0;
  for (std::size_t k = after; k < toks.size(); ++k) {
    const std::string& t = toks[k].text;
    if (t == "(") {
      ++paren;
      continue;
    }
    if (t == ")") {
      if (--paren < 0) return 0;
      continue;
    }
    if (paren > 0) continue;  // inside noexcept(...) or a member-init's args
    if (t == "{") {
      // Either the body, or a member-init brace (`: a_{1} {`). Distinguish by
      // looking back: a member-init brace directly follows an identifier or
      // ">" inside an initializer list context. We treat the first "{" at
      // paren depth 0 that is *not* immediately consumed as an init-brace as
      // the body. Simplest correct rule: if the previous non-")" token run
      // since the last "," or ":" ended with an identifier AND we are inside
      // an initializer list, this "{" is an init brace — skip its balanced
      // extent and continue.
      return k;
    }
    if (t == ";" || t == "=" || t == ",") return 0;
    if (!is_post_paren_token(t)) return 0;
  }
  return 0;
}

// For constructor initializer lists the "{" found by find_body_open may be a
// member brace-init (`: a_{1}, b_(2) {`). This walks the initializer list
// properly: entries are `ident...(...)` or `ident...{...}` separated by ","
// and terminated by the body "{".
std::size_t resolve_ctor_init(const std::vector<Tok>& toks, std::size_t colon) {
  std::size_t k = colon + 1;
  while (k < toks.size()) {
    // member name, possibly qualified/templated: walk identifiers, "::", "<...>"
    bool saw_ident = false;
    while (k < toks.size()) {
      const std::string& t = toks[k].text;
      if (!t.empty() && is_ident_char(t[0])) {
        saw_ident = true;
        ++k;
      } else if (t == ":" || t == "<" || t == ">" || t == ",") {
        // "::" qualification or template args; a "," inside template args is
        // rare in member-init bases — accept and keep walking until an
        // opener shows up.
        if (t == "," && saw_ident) break;  // malformed; bail below
        ++k;
      } else {
        break;
      }
    }
    if (k >= toks.size()) return 0;
    const std::string& open = toks[k].text;
    if (open == "(") {
      std::size_t close = match_paren(toks, k);
      if (close == 0) return 0;
      k = close + 1;
    } else if (open == "{") {
      int depth = 0;
      std::size_t j = k;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "{") ++depth;
        if (toks[j].text == "}" && --depth == 0) break;
      }
      if (j >= toks.size()) return 0;
      k = j + 1;
    } else {
      return 0;
    }
    if (k < toks.size() && toks[k].text == ",") {
      ++k;
      continue;
    }
    if (k < toks.size() && toks[k].text == "{") return k;  // the body
    return 0;
  }
  return 0;
}

// Index of the "}" closing the "{" at toks[open]; 0 if unmatched.
std::size_t match_brace(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == "{") ++depth;
    if (toks[j].text == "}" && --depth == 0) return j;
  }
  return 0;
}

// True if the statement containing toks[i] (scanning back to the previous
// ";", "{", "}" or access-specifier ":") carries the `virtual` keyword.
bool stmt_has_virtual(const std::vector<Tok>& toks, std::size_t i) {
  for (std::size_t k = i; k-- > 0;) {
    const std::string& t = toks[k].text;
    if (t == ";" || t == "{" || t == "}") return false;
    if (t == "virtual") return true;
  }
  return false;
}

// Parses `dimmer-lint: pure(<prop>[, <prop>...])` markers out of one line's
// comment text into `mask` (bit per Prop). Unknown names are ignored (a typo
// simply fails to trust anything, so the finding stays active and visible).
void parse_pure_marker(const std::string& comment, unsigned* mask) {
  const std::string kMarker = "dimmer-lint: pure(";
  std::size_t pos = comment.find(kMarker);
  if (pos == std::string::npos) return;
  std::size_t open = pos + kMarker.size();
  std::size_t close = comment.find(')', open);
  std::string list = comment.substr(
      open, close == std::string::npos ? std::string::npos : close - open);
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t b = item.find_first_not_of(" \t");
    std::size_t e = item.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    Prop p;
    if (parse_prop(item.substr(b, e - b + 1), &p))
      *mask |= 1u << static_cast<unsigned>(p);
  }
}

}  // namespace

FileIndex index_source(const std::string& path, const std::string& contents) {
  FileIndex out;
  out.file = path;
  out.hash = fnv1a(contents);

  std::vector<LineInfo> lines = split_channels(contents);
  std::vector<Tok> toks = tokenize(lines);

  // pure() trust markers per line.
  std::vector<unsigned> pure_mask(lines.size() + 2, 0);
  for (std::size_t li = 0; li < lines.size(); ++li)
    parse_pure_marker(lines[li].comment, &pure_mask[li + 1]);

  // --- Pass A: scope tracking + definition recognition --------------------
  std::vector<ScopeEntry> scopes;
  int depth = 0;
  struct Body {
    std::size_t fn;       // index into out.functions
    std::size_t tok_begin, tok_end;  // body token range (exclusive of braces)
  };
  std::vector<Body> bodies;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "{") {
      ++depth;
      continue;
    }
    if (t == "}") {
      --depth;
      while (!scopes.empty() && scopes.back().depth > depth) scopes.pop_back();
      continue;
    }
    if (t == "namespace") {
      // `namespace a::b {` or anonymous `namespace {`.
      std::string name;
      std::size_t j = i + 1;
      while (j < toks.size() && (toks[j].text == ":" ||
                                 (!toks[j].text.empty() &&
                                  is_ident_char(toks[j].text[0])))) {
        if (toks[j].text != ":") {
          if (!name.empty()) name += "::";
          name += toks[j].text;
        }
        ++j;
      }
      if (j < toks.size() && toks[j].text == "{") {
        scopes.push_back({name, depth + 1});
        // fall through: the "{" is consumed on the next iteration
      }
      i = j - 1;
      continue;
    }
    if (t == "struct" || t == "class") {
      // Class-head: `struct [[..]] Name [final] [: bases] {`.
      std::size_t j = i + 1;
      while (tok_at(toks, j) == "[" && tok_at(toks, j + 1) == "[") {
        while (j < toks.size() && toks[j].text != "]") ++j;
        j += 2;
      }
      const std::string& name = tok_at(toks, j);
      if (name.empty() || !is_ident_char(name[0])) continue;
      std::size_t k = j + 1;
      if (tok_at(toks, k) == "final") ++k;
      // Definition only when the next token opens the class body directly or
      // via a base clause; `struct X;` and `struct X v;` are not scopes.
      if (tok_at(toks, k) != "{" && tok_at(toks, k) != ":") continue;
      if (tok_at(toks, k) == ":") {
        while (k < toks.size() && toks[k].text != "{" && toks[k].text != ";")
          ++k;
        if (tok_at(toks, k) != "{") continue;
      }
      scopes.push_back({name, depth + 1});
      continue;
    }
    // Candidate function definition: ident "(" ... ")" [stuff] "{".
    if (t.empty() || !is_ident_char(t[0]) ||
        std::isdigit(static_cast<unsigned char>(t[0])))
      continue;
    if (is_cpp_keyword(t) || t == "operator") continue;
    if (tok_at(toks, i + 1) != "(") continue;
    std::size_t close = match_paren(toks, i + 1);
    if (close == 0) continue;
    std::size_t body_open = 0;
    // Constructor initializer lists need their own walk; detect the ":" at
    // paren depth 0 directly after the post-paren qualifiers.
    {
      std::size_t k = close + 1;
      while (k < toks.size() &&
             (toks[k].text == "const" || toks[k].text == "noexcept" ||
              toks[k].text == "override" || toks[k].text == "final"))
        ++k;
      if (tok_at(toks, k) == "noexcept") ++k;
      if (tok_at(toks, k) == ":" && tok_at(toks, k + 1) != ":")
        body_open = resolve_ctor_init(toks, k);
    }
    if (body_open == 0) body_open = find_body_open(toks, close + 1);
    if (body_open == 0) continue;
    std::size_t body_close = match_brace(toks, body_open);
    if (body_close == 0) continue;

    FunctionDef fn;
    fn.file = path;
    fn.line = toks[i].line;
    fn.body_begin = toks[body_open].line;
    fn.body_end = toks[body_close].line;
    // Name and qualifier: `Class::name` at the definition site wins; else the
    // innermost class/namespace scope.
    fn.name = t;
    if (i >= 1 && toks[i - 1].text == "~") fn.name = "~" + fn.name;
    if (colon_qualified(toks, i) && i >= 3 &&
        is_ident_char(toks[i - 3].text[0])) {
      fn.scope = toks[i - 3].text;
    } else {
      for (const ScopeEntry& s : scopes) {
        if (s.name.empty()) continue;
        if (!fn.scope.empty()) fn.scope += "::";
        fn.scope += s.name;
      }
    }
    fn.is_virtual = stmt_has_virtual(toks, i);
    if (!fn.is_virtual) {
      for (std::size_t k = close + 1; k < body_open; ++k)
        if (toks[k].text == "override" || toks[k].text == "final")
          fn.is_virtual = true;
    }
    // Trust annotation on the signature line or the line above.
    unsigned mask = 0;
    if (fn.line < static_cast<int>(pure_mask.size())) mask |= pure_mask[fn.line];
    if (fn.line >= 2) mask |= pure_mask[fn.line - 1];
    for (int p = 0; p < kNumProps; ++p)
      fn.trusted[p] = (mask & (1u << static_cast<unsigned>(p))) != 0;
    // Pcg32 parameters.
    for (std::size_t k = i + 2; k < close; ++k) {
      if (toks[k].text != "Pcg32") continue;
      fn.takes_pcg = true;
      std::size_t j = k + 1;
      while (tok_at(toks, j) == "&" || tok_at(toks, j) == "*" ||
             tok_at(toks, j) == "const")
        ++j;
      const std::string& pname = tok_at(toks, j);
      if (!pname.empty() && is_ident_char(pname[0]) &&
          !std::isdigit(static_cast<unsigned char>(pname[0])))
        fn.pcg_params.push_back(pname);
    }

    bodies.push_back({out.functions.size(), body_open + 1, body_close});
    out.functions.push_back(std::move(fn));
    // Do NOT skip the body: nested local definitions still get extracted and
    // the brace/scope tracking above stays consistent.
  }

  // --- Pass B: innermost-function line attribution ------------------------
  // For each token index, the body (by index into `bodies`) it belongs to;
  // later-extracted bodies are more deeply nested... except that extraction
  // order is outer-first, so "smallest token range wins".
  auto body_of_tok = [&](std::size_t ti) -> int {
    int best = -1;
    std::size_t best_span = static_cast<std::size_t>(-1);
    for (std::size_t b = 0; b < bodies.size(); ++b) {
      if (ti < bodies[b].tok_begin || ti >= bodies[b].tok_end) continue;
      std::size_t span = bodies[b].tok_end - bodies[b].tok_begin;
      if (span < best_span) {
        best_span = span;
        best = static_cast<int>(b);
      }
    }
    return best;
  };

  auto set_direct = [&](int body, Prop p, int line, const std::string& token) {
    if (body < 0) return;
    FunctionDef& fn = out.functions[bodies[static_cast<std::size_t>(body)].fn];
    DirectEvidence& ev = fn.direct[static_cast<int>(p)];
    if (ev.line == 0) ev = {line, token};
  };

  // Direct evidence + calls + refs, one sweep over the token stream.
  const std::set<std::string>& growers = grower_tokens();
  const std::set<std::string>& clock_bare = clock_bare_tokens();
  const std::set<std::string>& clock_qual = clock_qual_tokens();
  const std::set<std::string>& draws = rng_draw_tokens();

  for (std::size_t ti = 0; ti < toks.size(); ++ti) {
    const std::string& t = toks[ti].text;
    if (t.empty() || !is_ident_char(t[0])) continue;
    int body = body_of_tok(ti);
    if (body < 0) continue;
    int line = toks[ti].line;
    FunctionDef& fn = out.functions[bodies[static_cast<std::size_t>(body)].fn];

    // may-allocate: `new` and container growers. Lines the author already
    // sanctioned with a NOLINT for the local rule are sanctioned as direct
    // evidence too — the annotation's justification (capacity recycling)
    // applies to callers exactly as much as to the line itself.
    if (t == "new" && !line_suppressed(lines, line, "hot-no-alloc")) {
      set_direct(body, Prop::kAllocate, line, "new");
    } else if (growers.count(t) &&
               (tok_at(toks, ti + 1) == "(" ||
                tok_at(toks, skip_template_args(toks, ti + 1)) == "(") &&
               !line_suppressed(lines, line, "hot-no-alloc")) {
      set_direct(body, Prop::kAllocate, line, t);
    }

    // may-touch-clock: same vocabulary as det-clock, but *without* the path
    // exemption — a clock read in src/util/ is legal to write, yet a hot
    // region reaching it is still a finding at the caller.
    if (!line_suppressed(lines, line, "det-clock")) {
      if (clock_bare.count(t)) {
        set_direct(body, Prop::kClock, line, t);
      } else if (clock_qual.count(t)) {
        bool qualified = colon_qualified(toks, ti);
        bool bare_call = tok_at(toks, ti + 1) == "(" &&
                         !member_access(toks, ti) && !qualified &&
                         tok_at(toks, ti - 1) != ":";
        if (qualified || bare_call) set_direct(body, Prop::kClock, line, t);
      }
    }

    // may-draw-rng: Pcg32 stream-advancing member calls.
    if (draws.count(t) && member_access(toks, ti) &&
        tok_at(toks, ti + 1) == "(")
      set_direct(body, Prop::kDrawRng, line, t);

    // Calls and refs.
    if (is_cpp_keyword(t) || t == "operator") continue;
    if (std::isdigit(static_cast<unsigned char>(t[0]))) continue;
    if (tok_at(toks, ti + 1) == "(") {
      bool dup = false;
      for (const auto& c : fn.calls)
        if (c.first == t) {
          dup = true;
          break;
        }
      if (!dup) fn.calls.emplace_back(t, line);
    } else {
      // Address-taken / bare function reference in argument or assignment
      // position: `(&f`, `, f,`, `= f;`. Only names that resolve to indexed
      // functions become edges, so ordinary variable arguments are inert.
      const std::string& prev = tok_at(toks, ti - 1);
      const std::string& next = tok_at(toks, ti + 1);
      bool addr = prev == "&" && ti >= 2 &&
                  (tok_at(toks, ti - 2) == "(" || tok_at(toks, ti - 2) == "," ||
                   tok_at(toks, ti - 2) == "=");
      bool bare = (prev == "(" || prev == "," || prev == "=") &&
                  (next == "," || next == ")" || next == ";");
      if (addr || bare) {
        bool dup = false;
        for (const auto& r : fn.refs)
          if (r.first == t) {
            dup = true;
            break;
          }
        if (!dup) fn.refs.emplace_back(t, line);
      }
    }
  }

  // may-iterate-unordered: reuse the det-umap-iter rule verbatim (aliases,
  // declared variables, range-for, begin()/cbegin()) and attribute its
  // findings to the innermost enclosing function body by line.
  {
    std::vector<Finding> iter;
    detail_rule_det_umap_iter(path, toks, &iter);
    for (const Finding& f : iter) {
      if (line_suppressed(lines, f.line, "det-umap-iter")) continue;
      // Find the function whose body covers this line (innermost).
      int best = -1;
      int best_span = -1;
      for (std::size_t fi = 0; fi < out.functions.size(); ++fi) {
        const FunctionDef& fn = out.functions[fi];
        if (f.line < fn.body_begin || f.line > fn.body_end) continue;
        int span = fn.body_end - fn.body_begin;
        if (best < 0 || span < best_span) {
          best = static_cast<int>(fi);
          best_span = span;
        }
      }
      if (best >= 0) {
        DirectEvidence& ev =
            out.functions[static_cast<std::size_t>(best)]
                .direct[static_cast<int>(Prop::kUnorderedIter)];
        if (ev.line == 0) ev = {f.line, "unordered-iteration"};
      }
    }
  }

  return out;
}

FileIndex index_or_reuse(const std::string& path, const std::string& contents,
                         const FileIndex* cached) {
  if (cached != nullptr && cached->hash == fnv1a(contents) &&
      cached->file == path)
    return *cached;
  return index_source(path, contents);
}

// ---------------------------------------------------------------------------
// Serialization (the index cache / CI artifact)
// ---------------------------------------------------------------------------
//
// Line-oriented, whitespace-delimited, versioned. All fields are tokens or
// repo paths, neither of which can contain whitespace, so no escaping is
// needed; "-" encodes the empty string.

namespace {

constexpr const char* kIndexMagic = "dimmer-lint-index v2";

std::string enc(const std::string& s) { return s.empty() ? "-" : s; }
std::string dec(const std::string& s) { return s == "-" ? "" : s; }

}  // namespace

std::string serialize_index(std::vector<FileIndex> files) {
  std::sort(files.begin(), files.end(),
            [](const FileIndex& a, const FileIndex& b) {
              return a.file < b.file;
            });
  std::ostringstream os;
  os << kIndexMagic << "\n";
  for (const FileIndex& fi : files) {
    os << "file " << enc(fi.file) << " " << std::hex << fi.hash << std::dec
       << " " << fi.functions.size() << "\n";
    for (const FunctionDef& fn : fi.functions) {
      unsigned trust = 0;
      for (int p = 0; p < kNumProps; ++p)
        if (fn.trusted[p]) trust |= 1u << static_cast<unsigned>(p);
      os << "fn " << enc(fn.name) << " " << enc(fn.scope) << " " << fn.line
         << " " << fn.body_begin << " " << fn.body_end << " "
         << (fn.is_virtual ? 1 : 0) << " " << (fn.takes_pcg ? 1 : 0) << " "
         << trust << "\n";
      for (int p = 0; p < kNumProps; ++p) {
        const DirectEvidence& ev = fn.direct[p];
        if (ev.line != 0)
          os << "d " << p << " " << ev.line << " " << enc(ev.token) << "\n";
      }
      for (const auto& [name, line] : fn.calls)
        os << "c " << line << " " << enc(name) << "\n";
      for (const auto& [name, line] : fn.refs)
        os << "r " << line << " " << enc(name) << "\n";
      for (const std::string& pname : fn.pcg_params)
        os << "p " << enc(pname) << "\n";
    }
  }
  return os.str();
}

bool parse_index(const std::string& text, std::vector<FileIndex>* out) {
  out->clear();
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kIndexMagic) return false;
  FileIndex* file = nullptr;
  FunctionDef* fn = nullptr;
  std::size_t expect_fns = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "file") {
      if (file != nullptr && file->functions.size() != expect_fns)
        return false;
      std::string path;
      std::string hash_hex;
      std::size_t nfuncs = 0;
      if (!(ls >> path >> hash_hex >> nfuncs)) return false;
      out->emplace_back();
      file = &out->back();
      fn = nullptr;
      file->file = dec(path);
      char* end = nullptr;
      file->hash = std::strtoull(hash_hex.c_str(), &end, 16);
      if (end == nullptr || *end != '\0') return false;
      expect_fns = nfuncs;
    } else if (kind == "fn") {
      if (file == nullptr) return false;
      std::string name, scope;
      int fline = 0, bb = 0, be = 0, virt = 0, pcg = 0;
      unsigned trust = 0;
      if (!(ls >> name >> scope >> fline >> bb >> be >> virt >> pcg >> trust))
        return false;
      file->functions.emplace_back();
      fn = &file->functions.back();
      fn->name = dec(name);
      fn->scope = dec(scope);
      fn->file = file->file;
      fn->line = fline;
      fn->body_begin = bb;
      fn->body_end = be;
      fn->is_virtual = virt != 0;
      fn->takes_pcg = pcg != 0;
      for (int p = 0; p < kNumProps; ++p)
        fn->trusted[p] = (trust & (1u << static_cast<unsigned>(p))) != 0;
    } else if (kind == "d") {
      int p = -1, eline = 0;
      std::string token;
      if (fn == nullptr || !(ls >> p >> eline >> token)) return false;
      if (p < 0 || p >= kNumProps) return false;
      fn->direct[p] = {eline, dec(token)};
    } else if (kind == "c" || kind == "r") {
      int cline = 0;
      std::string name;
      if (fn == nullptr || !(ls >> cline >> name)) return false;
      auto& vec = kind == "c" ? fn->calls : fn->refs;
      vec.emplace_back(dec(name), cline);
    } else if (kind == "p") {
      std::string pname;
      if (fn == nullptr || !(ls >> pname)) return false;
      fn->pcg_params.push_back(dec(pname));
    } else {
      return false;
    }
  }
  if (file != nullptr && file->functions.size() != expect_fns) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Call graph + fixpoint
// ---------------------------------------------------------------------------

const std::vector<int>* CallGraph::lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

bool CallGraph::raw_has(int node, Prop p) const {
  return nodes_[static_cast<std::size_t>(node)].why[static_cast<int>(p)] !=
         Why::kNone;
}

bool CallGraph::has(int node, Prop p) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  return n.why[static_cast<int>(p)] != Why::kNone &&
         !n.def.trusted[static_cast<int>(p)];
}

std::string CallGraph::display(int node) const {
  const FunctionDef& d = nodes_[static_cast<std::size_t>(node)].def;
  return d.scope.empty() ? d.name : d.scope + "::" + d.name;
}

std::string CallGraph::chain(int node, Prop p) const {
  const int pi = static_cast<int>(p);
  std::string out = display(node);
  int cur = node;
  // Witness edges always terminate at a node with direct evidence (a node is
  // only ever recorded as a witness after it already holds the property), but
  // cap the walk defensively so a corrupted cache cannot loop.
  for (int hops = 0; hops < 32; ++hops) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.why[pi] == Why::kDirect || n.why[pi] == Why::kNone) break;
    cur = n.via[pi];
    out += n.why[pi] == Why::kViaRef ? " ~> " : " -> ";
    out += display(cur);
  }
  const Node& last = nodes_[static_cast<std::size_t>(cur)];
  if (last.why[pi] == Why::kDirect) {
    const DirectEvidence& ev = last.def.direct[pi];
    out += " (`" + ev.token + "` at " + last.def.file + ":" +
           std::to_string(ev.line) + ")";
  }
  return out;
}

CallGraph build_call_graph(std::vector<FileIndex> files) {
  std::sort(files.begin(), files.end(),
            [](const FileIndex& a, const FileIndex& b) {
              return a.file < b.file;
            });
  CallGraph g;
  for (FileIndex& fi : files)
    for (FunctionDef& fn : fi.functions) {
      CallGraph::Node n;
      n.def = std::move(fn);
      for (int p = 0; p < kNumProps; ++p)
        if (n.def.direct[p].line != 0) n.why[p] = CallGraph::Why::kDirect;
      g.nodes_.push_back(std::move(n));
    }
  // Node order is (file, line) — files sorted above, functions in file order.
  for (std::size_t i = 0; i < g.nodes_.size(); ++i)
    g.by_name_[g.nodes_[i].def.name].push_back(static_cast<int>(i));

  // Fixpoint: a property flows callee -> caller unless the callee trusts it
  // away. Witnesses are assigned once (first discovery in a deterministic
  // iteration order), so chains never cycle: a node becomes a witness only
  // after it already holds the property, and the ground case is kDirect.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
      CallGraph::Node& n = g.nodes_[i];
      auto absorb = [&](const std::vector<std::pair<std::string, int>>& edges,
                        CallGraph::Why why) {
        for (const auto& [callee, line] : edges) {
          auto it = g.by_name_.find(callee);
          if (it == g.by_name_.end()) continue;
          for (int t : it->second) {
            if (t == static_cast<int>(i)) continue;
            const CallGraph::Node& tn = g.nodes_[static_cast<std::size_t>(t)];
            for (int p = 0; p < kNumProps; ++p) {
              if (n.why[p] != CallGraph::Why::kNone) continue;
              if (tn.why[p] == CallGraph::Why::kNone || tn.def.trusted[p])
                continue;
              n.why[p] = why;
              n.via[p] = t;
              n.via_line[p] = line;
              changed = true;
            }
          }
        }
      };
      absorb(n.def.calls, CallGraph::Why::kViaCall);
      absorb(n.def.refs, CallGraph::Why::kViaRef);
    }
  }
  return g;
}

}  // namespace dimmer::lint
