// Shared token-stream machinery for dimmer-lint.
//
// Both analysis passes consume the same three-layer view of a translation
// unit, so the machinery lives here rather than in lint.cpp:
//
//   1. split_channels — per-line code and comment channels. String and
//      character literal *contents* are blanked (quotes kept) so token scans
//      never fire on, e.g., a log message mentioning "mt19937"; comment text
//      is captured separately because that is where the directive and
//      suppression syntax lives.
//   2. tokenize — identifiers/numbers as words, everything else as
//      single-character punctuation, each token tagged with its 1-based line.
//   3. scan_directives — the `dimmer-lint:` region/annotation markers parsed
//      out of the comment channel.
//
// Pass 1 (index.cpp) uses this to extract function definitions and direct
// property evidence; pass 2 (lint.cpp) uses it to run the per-file rules.
// The token vocabularies the two passes share (allocation growers, ambient
// clock reads, unordered containers, Pcg32 draw methods) are exposed here so
// a rule and the property it propagates can never disagree about what counts.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace dimmer::lint {

/// One source line, split into blanked code text and comment text. Columns
/// are preserved (blanking writes spaces).
struct LineInfo {
  std::string code;
  std::string comment;
};

/// One token: an identifier/number word or a single punctuation character.
struct Tok {
  std::string text;
  int line = 0;  ///< 1-based
};

bool is_ident_char(char c);

std::vector<LineInfo> split_channels(const std::string& src);
std::vector<Tok> tokenize(const std::vector<LineInfo>& lines);

/// The `dimmer-lint:` directives of one file, resolved to per-line flags.
struct Directives {
  std::vector<bool> hot;    ///< per line (1-based index): inside hot-path region
  std::vector<bool> fp_ok;  ///< line carries `dimmer-lint: fp-order-ok`
  std::vector<bool> simd_ok;  ///< line carries `dimmer-lint: simd-fp-order-ok`
  std::vector<Finding> region_errors;  ///< unbalanced begin/end
};

Directives scan_directives(const std::string& path,
                           const std::vector<LineInfo>& lines);

/// True if `rule` is suppressed by `marker` (NOLINT-DIMMER /
/// NOLINTNEXTLINE-DIMMER, optionally with a parenthesized rule list) in one
/// line's comment text.
bool marker_suppresses(const std::string& comment, const std::string& marker,
                       const std::string& rule);

/// True if `rule` is suppressed on `line` by a same-line NOLINT-DIMMER or a
/// previous-line NOLINTNEXTLINE-DIMMER.
bool line_suppressed(const std::vector<LineInfo>& lines, int line,
                     const std::string& rule);

// --- Token cursor helpers -------------------------------------------------

/// toks[i].text, or "" past the end.
const std::string& tok_at(const std::vector<Tok>& t, std::size_t i);

/// True if toks[i] is preceded by "::" (with or without a leading "std").
bool colon_qualified(const std::vector<Tok>& t, std::size_t i);

/// True if toks[i] is accessed as a member (`.x`, `->x`).
bool member_access(const std::vector<Tok>& t, std::size_t i);

/// Index just past a balanced template argument list starting at toks[i]
/// (which must be "<"); returns i if it does not look like one.
std::size_t skip_template_args(const std::vector<Tok>& t, std::size_t i);

/// Index of the ")" matching toks[open] (which must be "("); 0 if unmatched.
std::size_t match_paren(const std::vector<Tok>& t, std::size_t open);

// --- Small string utilities ----------------------------------------------

std::string trimmed_line(const std::string& src_line);
bool has_prefix(const std::string& s, const std::string& prefix);

/// Normalizes separators and strips leading "./" for prefix matching.
std::string norm_path(std::string p);

// --- Shared token vocabularies -------------------------------------------

/// Container-growing / allocating member calls (hot-no-alloc, may-allocate).
const std::set<std::string>& grower_tokens();

/// Ambient clock / randomness identifiers that are bad wherever they appear
/// (det-clock, may-touch-clock).
const std::set<std::string>& clock_bare_tokens();

/// Short, collision-prone clock names: only bad when "::"-qualified or used
/// as a bare call (`time(nullptr)`), never as members of other objects.
const std::set<std::string>& clock_qual_tokens();

/// std::unordered_* container type names (det-umap-iter, may-iterate-unordered).
const std::set<std::string>& unordered_tokens();

/// util::Pcg32 member calls that advance the stream (may-draw-rng).
const std::set<std::string>& rng_draw_tokens();

/// C++ keywords that can precede "(" without being a call or definition.
bool is_cpp_keyword(const std::string& s);

/// The det-umap-iter rule body (alias resolution, declared variables,
/// range-for, explicit begin()/cbegin()). Shared between pass 2 (which
/// reports its findings directly) and pass 1 (which maps them to
/// may-iterate-unordered direct evidence), so the rule and the property it
/// propagates can never disagree.
void detail_rule_det_umap_iter(const std::string& path,
                               const std::vector<Tok>& toks,
                               std::vector<Finding>* out);

}  // namespace dimmer::lint
