// dimmer-lint CLI. See lint.hpp for the rule catalogue.
//
// Usage:
//   dimmer-lint [--root DIR] [--baseline FILE] [--json FILE]
//               [--index-cache FILE] [--jobs N]
//               [--update-baseline] [--write-baseline FILE]
//               [--list-rules] [--quiet]
//               <file-or-directory>...
//
// Directories are scanned recursively for .cpp/.cc/.hpp/.h files (build
// trees and dotted directories are skipped). Paths in diagnostics and in the
// JSON report are made relative to --root (default: the current directory)
// so reports are machine-independent and baseline keys are stable.
//
// Two passes over the collected files:
//   1. index: every file is function-extracted into the cross-TU call graph
//      (index.hpp). With --index-cache, per-file indexes are reused when the
//      file's content hash matches and the merged index is written back
//      atomically — a warm cache changes nothing but wall time.
//   2. rules: the per-file rules plus the transitive/taint rules run against
//      the graph, fanned out over --jobs threads. Results merge in file
//      order, so the report is byte-identical for any --jobs value.
//
// --update-baseline snapshots the current unsuppressed findings into the
// --baseline file (sorted, deduped, written atomically) and exits 0; it
// refuses — exit 2, baseline untouched — when the scan itself reported
// errors (unreadable file, unbalanced hot-path region).
//
// Exit status: 0 if every finding is suppressed or baselined, 1 otherwise,
// 2 on usage errors. CI runs:
//   dimmer-lint --root . --baseline tools/dimmer-lint/baseline.txt
//               --json lint-report.json --index-cache lint-index.txt
//               --jobs 4 src bench examples tools
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace fs = std::filesystem;
using dimmer::lint::FileIndex;
using dimmer::lint::Finding;
using dimmer::lint::SourceFile;

namespace {

bool has_source_ext(const fs::path& p) {
  std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".hpp" || e == ".h";
}

bool skip_dir(const fs::path& p) {
  std::string name = p.filename().string();
  return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0;
}

// Returns false (and reports) if `p` does not exist — a lint invocation
// naming a missing path must fail loudly, not scan an empty set.
bool collect(const fs::path& p, std::vector<fs::path>* out) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    std::vector<fs::path> entries;
    for (const auto& e : fs::directory_iterator(p, ec)) entries.push_back(e);
    // Sorted traversal: report order (and thus the JSON report) must not
    // depend on readdir() order.
    std::sort(entries.begin(), entries.end());
    bool ok = true;
    for (const fs::path& e : entries) {
      if (fs::is_directory(e, ec)) {
        if (!skip_dir(e)) ok = collect(e, out) && ok;
      } else if (has_source_ext(e)) {
        out->push_back(e);
      }
    }
    return ok;
  }
  if (fs::exists(p, ec)) {
    out->push_back(p);
    return true;
  }
  std::cerr << "dimmer-lint: no such path: " << p.string() << "\n";
  return false;
}

std::string relative_to(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec || rel.empty() || *rel.begin() == "..")
                      ? p.string()
                      : rel.string();
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

int usage(int code) {
  std::cerr
      << "usage: dimmer-lint [--root DIR] [--baseline FILE] [--json FILE]\n"
         "                   [--index-cache FILE] [--jobs N]\n"
         "                   [--update-baseline] [--write-baseline FILE]\n"
         "                   [--list-rules] [--quiet] <path>...\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".", baseline_path, json_path, write_baseline_path;
  std::string index_cache_path;
  bool list_rules = false, quiet = false, update_baseline = false;
  int jobs = 1;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "dimmer-lint: " << a << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--root")
      root = next();
    else if (a == "--baseline")
      baseline_path = next();
    else if (a == "--json")
      json_path = next();
    else if (a == "--index-cache")
      index_cache_path = next();
    else if (a == "--jobs") {
      try {
        jobs = std::stoi(next());
      } catch (const std::exception&) {
        jobs = 0;
      }
      if (jobs < 1) {
        std::cerr << "dimmer-lint: --jobs needs a positive integer\n";
        return 2;
      }
    } else if (a == "--update-baseline")
      update_baseline = true;
    else if (a == "--write-baseline")
      write_baseline_path = next();
    else if (a == "--list-rules")
      list_rules = true;
    else if (a == "--quiet")
      quiet = true;
    else if (a == "--help" || a == "-h")
      return usage(0);
    else if (!a.empty() && a[0] == '-') {
      std::cerr << "dimmer-lint: unknown option " << a << "\n";
      return usage(2);
    } else {
      inputs.push_back(a);
    }
  }

  if (list_rules) {
    for (const auto& r : dimmer::lint::rules())
      std::cout << r.id << "\n    " << r.summary << "\n";
    std::cout
        << "annotations\n"
           "    // dimmer-lint: hot-path begin|end   bracket a zero-alloc "
           "region\n"
           "    // dimmer-lint: fp-order-ok          sanction one fp "
           "reduction\n"
           "    // dimmer-lint: simd-fp-order-ok     sanction one lane "
           "reduction\n"
           "    // dimmer-lint: pure(<prop>)         stop a transitive "
           "property at this\n"
           "                                         function (reported as "
           "suppressed);\n"
           "                                         props: may-allocate, "
           "may-touch-clock,\n"
           "                                         may-iterate-unordered, "
           "may-draw-rng\n"
           "    // NOLINT-DIMMER[(rule,...)]         suppress on this line\n"
           "    // NOLINTNEXTLINE-DIMMER[(rule,...)] suppress on the next "
           "line\n";
    if (inputs.empty()) return 0;
  }
  if (inputs.empty()) return usage(2);
  if (update_baseline && baseline_path.empty()) {
    std::cerr << "dimmer-lint: --update-baseline needs --baseline FILE\n";
    return 2;
  }

  // Relative inputs are resolved against --root, so the CLI behaves the same
  // from any working directory (CI runs from the repo root; the CMake `lint`
  // target runs from the build tree).
  std::vector<fs::path> paths;
  bool inputs_ok = true;
  for (const std::string& in : inputs) {
    fs::path p(in);
    if (p.is_relative() && !fs::exists(p)) p = fs::path(root) / p;
    inputs_ok = collect(p, &paths) && inputs_ok;
  }
  if (!inputs_ok) return 2;

  // Read every file once; both passes work from the same bytes. Unreadable
  // files become parse-error findings so they fail the run (and block
  // --update-baseline) instead of silently shrinking the scan.
  std::vector<SourceFile> files;
  std::vector<Finding> findings;
  for (const fs::path& f : paths) {
    std::string rel = relative_to(f, root);
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      Finding err{rel, 0, "io", "cannot open file", "", false, false};
      err.parse_error = true;
      findings.push_back(err);
      continue;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    files.push_back({rel, ss.str()});
  }

  // Pass 1: per-file function indexes (cache-reused by content hash), merged
  // into the cross-TU call graph. Cached entries for files that no longer
  // exist are dropped on the rewrite.
  std::map<std::string, FileIndex> cached;
  if (!index_cache_path.empty()) {
    std::ifstream in(index_cache_path, std::ios::binary);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      std::vector<FileIndex> entries;
      // An unparsable (old-version, truncated) cache degrades to a full
      // re-extraction, never to a wrong graph.
      if (dimmer::lint::parse_index(ss.str(), &entries))
        for (FileIndex& fi : entries) cached[fi.file] = std::move(fi);
    }
  }
  std::vector<FileIndex> index;
  index.reserve(files.size());
  for (const SourceFile& sf : files) {
    auto it = cached.find(sf.path);
    index.push_back(dimmer::lint::index_or_reuse(
        sf.path, sf.contents, it == cached.end() ? nullptr : &it->second));
  }
  if (!index_cache_path.empty() &&
      !dimmer::lint::write_file_atomic(index_cache_path,
                                       dimmer::lint::serialize_index(index)))
    std::cerr << "dimmer-lint: warning: cannot write index cache "
              << index_cache_path << "\n";
  dimmer::lint::CallGraph graph = dimmer::lint::build_call_graph(index);

  // Pass 2: the rules, with transitive knowledge, across --jobs threads.
  dimmer::lint::Options opt;
  std::vector<Finding> scanned =
      dimmer::lint::scan_sources(files, opt, &graph, jobs);
  findings.insert(findings.end(), scanned.begin(), scanned.end());

  if (update_baseline) {
    if (!dimmer::lint::update_baseline(findings, baseline_path)) {
      std::cerr << "dimmer-lint: refusing to update baseline: the report "
                   "contains parse errors (or the write failed); fix the "
                   "scan first\n";
      return 2;
    }
    if (!quiet)
      std::cerr << "dimmer-lint: baseline updated: " << baseline_path << "\n";
    return 0;
  }

  if (!baseline_path.empty())
    dimmer::lint::apply_baseline(findings,
                                 dimmer::lint::load_baseline(baseline_path));

  int active = 0, suppressed = 0, baselined = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    if (f.baselined) {
      ++baselined;
      continue;
    }
    ++active;
    if (!quiet)
      std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n    " << f.excerpt << "\n";
  }

  if (!write_baseline_path.empty() &&
      !dimmer::lint::update_baseline(findings, write_baseline_path)) {
    std::cerr << "dimmer-lint: refusing to write baseline: the report "
                 "contains parse errors (or the write failed)\n";
    return 2;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << dimmer::lint::json_report(findings);
  }

  if (!quiet)
    std::cerr << "dimmer-lint: " << files.size() << " files, " << active
              << " active, " << suppressed << " suppressed, " << baselined
              << " baselined\n";
  return dimmer::lint::has_active(findings) ? 1 : 0;
}
