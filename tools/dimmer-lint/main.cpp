// dimmer-lint CLI. See lint.hpp for the rule catalogue.
//
// Usage:
//   dimmer-lint [--root DIR] [--baseline FILE] [--json FILE]
//               [--write-baseline FILE] [--list-rules] [--quiet]
//               <file-or-directory>...
//
// Directories are scanned recursively for .cpp/.cc/.hpp/.h files (build
// trees and dotted directories are skipped). Paths in diagnostics and in the
// JSON report are made relative to --root (default: the current directory)
// so reports are machine-independent and baseline keys are stable.
//
// Exit status: 0 if every finding is suppressed or baselined, 1 otherwise,
// 2 on usage errors. CI runs:
//   dimmer-lint --root . --baseline tools/dimmer-lint/baseline.txt
//               --json lint-report.json src bench examples
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using dimmer::lint::Finding;

namespace {

bool has_source_ext(const fs::path& p) {
  std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".hpp" || e == ".h";
}

bool skip_dir(const fs::path& p) {
  std::string name = p.filename().string();
  return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0;
}

// Returns false (and reports) if `p` does not exist — a lint invocation
// naming a missing path must fail loudly, not scan an empty set.
bool collect(const fs::path& p, std::vector<fs::path>* out) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    std::vector<fs::path> entries;
    for (const auto& e : fs::directory_iterator(p, ec)) entries.push_back(e);
    // Sorted traversal: report order (and thus the JSON report) must not
    // depend on readdir() order.
    std::sort(entries.begin(), entries.end());
    bool ok = true;
    for (const fs::path& e : entries) {
      if (fs::is_directory(e, ec)) {
        if (!skip_dir(e)) ok = collect(e, out) && ok;
      } else if (has_source_ext(e)) {
        out->push_back(e);
      }
    }
    return ok;
  }
  if (fs::exists(p, ec)) {
    out->push_back(p);
    return true;
  }
  std::cerr << "dimmer-lint: no such path: " << p.string() << "\n";
  return false;
}

std::string relative_to(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec || rel.empty() || *rel.begin() == "..")
                      ? p.string()
                      : rel.string();
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

int usage(int code) {
  std::cerr
      << "usage: dimmer-lint [--root DIR] [--baseline FILE] [--json FILE]\n"
         "                   [--write-baseline FILE] [--list-rules] "
         "[--quiet] <path>...\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".", baseline_path, json_path, write_baseline_path;
  bool list_rules = false, quiet = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "dimmer-lint: " << a << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--root")
      root = next();
    else if (a == "--baseline")
      baseline_path = next();
    else if (a == "--json")
      json_path = next();
    else if (a == "--write-baseline")
      write_baseline_path = next();
    else if (a == "--list-rules")
      list_rules = true;
    else if (a == "--quiet")
      quiet = true;
    else if (a == "--help" || a == "-h")
      return usage(0);
    else if (!a.empty() && a[0] == '-') {
      std::cerr << "dimmer-lint: unknown option " << a << "\n";
      return usage(2);
    } else {
      inputs.push_back(a);
    }
  }

  if (list_rules) {
    for (const auto& r : dimmer::lint::rules())
      std::cout << r.id << "\n    " << r.summary << "\n";
    if (inputs.empty()) return 0;
  }
  if (inputs.empty()) return usage(2);

  // Relative inputs are resolved against --root, so the CLI behaves the same
  // from any working directory (CI runs from the repo root; the CMake `lint`
  // target runs from the build tree).
  std::vector<fs::path> files;
  bool inputs_ok = true;
  for (const std::string& in : inputs) {
    fs::path p(in);
    if (p.is_relative() && !fs::exists(p)) p = fs::path(root) / p;
    inputs_ok = collect(p, &files) && inputs_ok;
  }
  if (!inputs_ok) return 2;

  dimmer::lint::Options opt;
  std::vector<Finding> findings;
  for (const fs::path& f : files) {
    std::vector<Finding> fs_ =
        dimmer::lint::scan_file(f.string(), relative_to(f, root), opt);
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }

  if (!baseline_path.empty())
    dimmer::lint::apply_baseline(findings,
                                 dimmer::lint::load_baseline(baseline_path));

  int active = 0, suppressed = 0, baselined = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    if (f.baselined) {
      ++baselined;
      continue;
    }
    ++active;
    if (!quiet)
      std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n    " << f.excerpt << "\n";
  }

  if (!write_baseline_path.empty()) {
    std::vector<std::string> keys;
    for (const Finding& f : findings)
      if (!f.suppressed) keys.push_back(dimmer::lint::baseline_key(f));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::ofstream out(write_baseline_path);
    out << "# dimmer-lint baseline: one `path|rule|excerpt-hash` key per "
           "line.\n# Regenerate with --write-baseline; keep this empty — fix "
           "or NOLINT-DIMMER new findings instead.\n";
    for (const std::string& k : keys) out << k << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << dimmer::lint::json_report(findings);
  }

  if (!quiet)
    std::cerr << "dimmer-lint: " << files.size() << " files, " << active
              << " active, " << suppressed << " suppressed, " << baselined
              << " baselined\n";
  return dimmer::lint::has_active(findings) ? 1 : 0;
}
