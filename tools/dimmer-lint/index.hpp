// dimmer-lint pass 1: the repo-wide function index and call graph.
//
// The line-local rules in lint.cpp prove contracts one source line at a
// time; the bit-identity guarantees this repo ships (scalar-vs-SIMD BENCH
// artifacts, shards=1-vs-N campaign journals, federation worker-count
// invariance) are *transitive* properties: a hot region that calls a helper
// which calls a helper which allocates is just as broken as one that calls
// `new` directly. Pass 1 makes that chain visible without an AST:
//
//   1. index_source — a brace/paren-aware function extractor over the same
//      token stream the line rules use. For every function definition it
//      records the signature/body line range, the enclosing scope, the
//      callee names used in the body, address-taken function references,
//      Pcg32-typed parameters, and *direct evidence* per transitive
//      property (the token and line that prove it).
//   2. build_call_graph — merges the per-file indexes and runs a fixpoint
//      propagation of the four properties:
//          may-allocate         (hot-no-alloc's vocabulary)
//          may-touch-clock      (det-clock's vocabulary)
//          may-iterate-unordered(det-umap-iter's vocabulary)
//          may-draw-rng         (Pcg32 stream-advancing member calls)
//      Calls resolve by *name*: `x.step(...)` reaches every indexed function
//      named `step`. That is deliberate conservative widening — virtual
//      dispatch and same-named overloads are over-approximated rather than
//      missed — and address-taken references (`register_cb(&helper)`,
//      `auto fp = helper;`) add edges the same way, so function-pointer
//      indirection cannot hide a violation. Every propagated property keeps
//      a witness edge, so findings can print the exact call chain down to
//      the direct evidence.
//
// Trust annotation: `// dimmer-lint: pure(<prop>[, <prop>...])` on a
// function's signature line (or the line above) asserts the property does
// not escape that function (e.g. capacity-recycling `assign` audited by a
// dynamic allocation counter). A trusted property stops propagating to
// callers, but the annotation is *reported as a suppressed finding* at the
// definition — sanctioned violations stay visible in the JSON report, never
// hidden.
//
// Caching: serialize_index/parse_index round-trip the whole index through a
// deterministic text format, content-hashed per file (FNV-1a over the raw
// bytes), so an incremental run re-extracts only changed files and a warm
// cache produces byte-identical reports to a cold one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lint.hpp"

namespace dimmer::lint {

/// The four transitive properties, in fixed report order.
enum class Prop : std::uint8_t {
  kAllocate = 0,
  kClock = 1,
  kUnorderedIter = 2,
  kDrawRng = 3,
};
inline constexpr int kNumProps = 4;

/// "may-allocate", "may-touch-clock", "may-iterate-unordered",
/// "may-draw-rng".
const char* prop_name(Prop p);

/// Parses a prop name (as written in `pure(...)`); false if unknown.
bool parse_prop(const std::string& s, Prop* out);

/// The line-local rule a property maps back to when a transitive finding is
/// reported: hot-no-alloc, det-clock, det-umap-iter, rng-discipline.
const char* prop_rule(Prop p);

/// Token-level proof that a function has a property directly in its body.
struct DirectEvidence {
  int line = 0;  ///< 0 = no direct evidence
  std::string token;
};

/// One extracted function definition.
struct FunctionDef {
  std::string name;   ///< unqualified identifier
  std::string scope;  ///< enclosing namespace/class path for display ("" ok)
  std::string file;   ///< as reported (repo-relative in the CLI)
  int line = 0;        ///< signature line (1-based)
  int body_begin = 0;  ///< line of the opening '{'
  int body_end = 0;    ///< line of the closing '}'
  bool is_virtual = false;  ///< declared virtual / override / final
  bool takes_pcg = false;   ///< signature has a util::Pcg32 parameter
  DirectEvidence direct[kNumProps];
  bool trusted[kNumProps] = {false, false, false, false};  ///< pure(<prop>)
  std::vector<std::pair<std::string, int>> calls;  ///< (callee, line), name-deduped
  std::vector<std::pair<std::string, int>> refs;   ///< address-taken refs
  std::vector<std::string> pcg_params;  ///< names of Pcg32-typed parameters
};

/// The index of one translation unit.
struct FileIndex {
  std::string file;
  std::uint64_t hash = 0;  ///< fnv1a over the raw file bytes
  std::vector<FunctionDef> functions;
};

/// Extracts the function index of one file. `path` is recorded verbatim in
/// every FunctionDef (the CLI hands in repo-relative paths).
FileIndex index_source(const std::string& path, const std::string& contents);

/// Reuses `cached` when its hash matches `contents`, else re-extracts.
FileIndex index_or_reuse(const std::string& path, const std::string& contents,
                         const FileIndex* cached);

/// Deterministic text serialization of a whole index (sorted by file path).
/// The format is versioned; parse_index rejects anything it does not
/// understand so a stale cache degrades to a full re-extraction, never to a
/// wrong report.
std::string serialize_index(std::vector<FileIndex> files);

/// Parses serialize_index output. Returns false (and clears `out`) on any
/// malformed input.
bool parse_index(const std::string& text, std::vector<FileIndex>* out);

/// The merged call graph with fixpoint-propagated properties.
class CallGraph {
 public:
  enum class Why : std::uint8_t { kNone, kDirect, kViaCall, kViaRef };

  struct Node {
    FunctionDef def;
    Why why[kNumProps] = {Why::kNone, Why::kNone, Why::kNone, Why::kNone};
    int via[kNumProps] = {-1, -1, -1, -1};  ///< witness callee node index
    int via_line[kNumProps] = {0, 0, 0, 0};  ///< call line inside this fn
  };

  /// Nodes sorted by (file, line, name); index into this vector is the node
  /// id used everywhere else.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Node ids sharing `name`, in node order; nullptr if none.
  const std::vector<int>* lookup(const std::string& name) const;

  /// The property holds, ignoring the node's own trust annotation. This is
  /// what the trust-reporting pass uses: an annotation only earns its
  /// suppressed finding if it actually masks something.
  bool raw_has(int node, Prop p) const;

  /// The property holds *and* escapes to callers (raw_has && !trusted).
  bool has(int node, Prop p) const;

  /// Human-readable witness chain: "a -> b -> c: `new` at file:line".
  std::string chain(int node, Prop p) const;

  /// "Scope::name" display form.
  std::string display(int node) const;

 private:
  friend CallGraph build_call_graph(std::vector<FileIndex> files);
  std::vector<Node> nodes_;
  std::map<std::string, std::vector<int>> by_name_;
};

/// Merges per-file indexes and runs the fixpoint. Deterministic: node order,
/// witness selection and therefore every chain string depend only on the
/// index contents, not on scan parallelism or cache state.
CallGraph build_call_graph(std::vector<FileIndex> files);

}  // namespace dimmer::lint
