#include "scan.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace dimmer::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<LineInfo> split_channels(const std::string& src) {
  enum class St { kCode, kLineComment, kBlockComment, kStr, kChr, kRawStr };
  std::vector<LineInfo> lines(1);
  St st = St::kCode;
  std::string raw_end;  // ")delim\"" terminator while in kRawStr
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char n = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      // Unterminated string/char literals do not really span lines in valid
      // C++; reset so one bad line cannot blank the rest of the file.
      if (st == St::kStr || st == St::kChr) st = St::kCode;
      lines.emplace_back();
      continue;
    }
    LineInfo& line = lines.back();
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlockComment;
          line.code += "  ";
          ++i;
        } else if (c == '"') {
          bool raw = !line.code.empty() && line.code.back() == 'R';
          if (raw) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(' && src[j] != '\n')
              delim += src[j++];
            raw_end = ")" + delim + "\"";
            st = St::kRawStr;
            line.code += '"';
            i = j;  // consume up to and including '('
          } else {
            st = St::kStr;
            line.code += '"';
          }
        } else if (c == '\'') {
          // Digit separator (1'000) vs character literal.
          bool sep = !line.code.empty() &&
                     std::isalnum(static_cast<unsigned char>(line.code.back())) &&
                     std::isalnum(static_cast<unsigned char>(n));
          if (sep) {
            line.code += c;
          } else {
            st = St::kChr;
            line.code += '\'';
          }
        } else {
          line.code += c;
        }
        break;
      case St::kLineComment:
        line.comment += c;
        break;
      case St::kBlockComment:
        if (c == '*' && n == '/') {
          st = St::kCode;
          ++i;
        } else {
          line.comment += c;
        }
        break;
      case St::kStr:
        if (c == '\\') {
          line.code += ' ';
          if (n != '\0' && n != '\n') {
            line.code += ' ';
            ++i;
          }
        } else if (c == '"') {
          line.code += '"';
          st = St::kCode;
        } else {
          line.code += ' ';
        }
        break;
      case St::kChr:
        if (c == '\\') {
          line.code += ' ';
          if (n != '\0' && n != '\n') {
            line.code += ' ';
            ++i;
          }
        } else if (c == '\'') {
          line.code += '\'';
          st = St::kCode;
        } else {
          line.code += ' ';
        }
        break;
      case St::kRawStr:
        if (src.compare(i, raw_end.size(), raw_end) == 0) {
          line.code += '"';
          i += raw_end.size() - 1;
          st = St::kCode;
        } else {
          line.code += c == '\t' ? '\t' : ' ';
        }
        break;
    }
  }
  return lines;
}

std::vector<Tok> tokenize(const std::vector<LineInfo>& lines) {
  std::vector<Tok> toks;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    std::size_t i = 0;
    while (i < code.size()) {
      char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (is_ident_char(c)) {
        std::size_t j = i;
        while (j < code.size() && is_ident_char(code[j])) ++j;
        toks.push_back({code.substr(i, j - i), static_cast<int>(li + 1)});
        i = j;
      } else {
        toks.push_back({std::string(1, c), static_cast<int>(li + 1)});
        ++i;
      }
    }
  }
  return toks;
}

namespace {

bool comment_has(const std::string& comment, const std::string& what) {
  return comment.find(what) != std::string::npos;
}

}  // namespace

Directives scan_directives(const std::string& path,
                           const std::vector<LineInfo>& lines) {
  Directives d;
  d.hot.assign(lines.size() + 2, false);
  d.fp_ok.assign(lines.size() + 2, false);
  d.simd_ok.assign(lines.size() + 2, false);
  int begin_line = -1;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& c = lines[li].comment;
    int ln = static_cast<int>(li + 1);
    if (comment_has(c, "dimmer-lint: fp-order-ok")) d.fp_ok[li + 1] = true;
    if (comment_has(c, "dimmer-lint: simd-fp-order-ok"))
      d.simd_ok[li + 1] = true;
    if (comment_has(c, "dimmer-lint: hot-path begin")) {
      if (begin_line >= 0) {
        d.region_errors.push_back({path, ln, "hot-no-alloc",
                                   "nested `hot-path begin` (previous region "
                                   "opened on line " +
                                       std::to_string(begin_line) + ")",
                                   "", false, false});
        d.region_errors.back().parse_error = true;
      }
      begin_line = ln;
    } else if (comment_has(c, "dimmer-lint: hot-path end")) {
      if (begin_line < 0) {
        d.region_errors.push_back({path, ln, "hot-no-alloc",
                                   "`hot-path end` without a matching begin",
                                   "", false, false});
        d.region_errors.back().parse_error = true;
      } else {
        for (int k = begin_line + 1; k < ln; ++k) d.hot[k] = true;
        begin_line = -1;
      }
    }
  }
  if (begin_line >= 0) {
    d.region_errors.push_back(
        {path, begin_line, "hot-no-alloc",
         "unterminated `hot-path begin` region", "", false, false});
    d.region_errors.back().parse_error = true;
  }
  return d;
}

bool marker_suppresses(const std::string& comment, const std::string& marker,
                       const std::string& rule) {
  std::size_t pos = comment.find(marker);
  if (pos == std::string::npos) return false;
  std::size_t after = pos + marker.size();
  // Bare marker (no rule list) suppresses everything.
  if (after >= comment.size() || comment[after] != '(') return true;
  std::size_t close = comment.find(')', after);
  std::string list = comment.substr(
      after + 1, close == std::string::npos ? std::string::npos
                                            : close - after - 1);
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t b = item.find_first_not_of(" \t");
    std::size_t e = item.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    if (item.substr(b, e - b + 1) == rule) return true;
  }
  return false;
}

bool line_suppressed(const std::vector<LineInfo>& lines, int line,
                     const std::string& rule) {
  // NOLINTNEXTLINE-DIMMER contains no "NOLINT-DIMMER" substring, so the two
  // markers cannot shadow each other.
  if (line >= 1 && line <= static_cast<int>(lines.size()) &&
      marker_suppresses(lines[line - 1].comment, "NOLINT-DIMMER", rule))
    return true;
  if (line >= 2 &&
      marker_suppresses(lines[line - 2].comment, "NOLINTNEXTLINE-DIMMER",
                        rule))
    return true;
  return false;
}

const std::string& tok_at(const std::vector<Tok>& t, std::size_t i) {
  static const std::string kEmpty;
  return i < t.size() ? t[i].text : kEmpty;
}

bool colon_qualified(const std::vector<Tok>& t, std::size_t i) {
  return i >= 2 && tok_at(t, i - 1) == ":" && tok_at(t, i - 2) == ":";
}

bool member_access(const std::vector<Tok>& t, std::size_t i) {
  if (i >= 1 && tok_at(t, i - 1) == ".") return true;
  return i >= 2 && tok_at(t, i - 1) == ">" && tok_at(t, i - 2) == "-";
}

std::size_t skip_template_args(const std::vector<Tok>& t, std::size_t i) {
  if (tok_at(t, i) != "<") return i;
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      if (--depth == 0) return j + 1;
    }
    if (t[j].text == ";" || t[j].text == "{") break;  // not a template list
  }
  return i;
}

std::size_t match_paren(const std::vector<Tok>& t, std::size_t open) {
  if (tok_at(t, open) != "(") return 0;
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")" && --depth == 0) return j;
  }
  return 0;
}

std::string trimmed_line(const std::string& src_line) {
  std::size_t b = src_line.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = src_line.find_last_not_of(" \t\r");
  return src_line.substr(b, e - b + 1);
}

bool has_prefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string norm_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  while (has_prefix(p, "./")) p.erase(0, 2);
  return p;
}

const std::set<std::string>& grower_tokens() {
  static const std::set<std::string> kGrowers = {
      "make_unique",  "make_shared",   "push_back", "emplace_back",
      "push_front",   "emplace_front", "emplace",   "insert",
      "resize",       "reserve",       "assign",    "append"};
  return kGrowers;
}

const std::set<std::string>& clock_bare_tokens() {
  static const std::set<std::string> kBareBad = {
      "steady_clock",   "system_clock",  "high_resolution_clock",
      "random_device",  "mt19937",       "mt19937_64",
      "minstd_rand",    "minstd_rand0",  "default_random_engine",
      "ranlux24_base",  "ranlux48_base", "knuth_b",
      "gettimeofday",   "timespec_get",  "localtime",
      "gmtime",         "clock_gettime",
      // Sleeps: a thread that waits out wall time is reading the ambient
      // clock with extra steps. Supervision code (the campaign engine's
      // respawn backoff and poll loops) goes through util::sleep_seconds,
      // which lives in the audited src/util/ seam like every clock read.
      "sleep_for",      "sleep_until",   "usleep",
      "nanosleep"};
  return kBareBad;
}

const std::set<std::string>& clock_qual_tokens() {
  static const std::set<std::string> kQualBad = {"rand", "srand", "time",
                                                 "clock", "sleep"};
  return kQualBad;
}

const std::set<std::string>& unordered_tokens() {
  static const std::set<std::string> kUnorderedKw = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kUnorderedKw;
}

const std::set<std::string>& rng_draw_tokens() {
  static const std::set<std::string> kDraws = {
      "next_u32",      "next_u64", "uniform",   "uniform_below",
      "uniform_int",   "bernoulli", "normal",   "shuffle",
      "fork"};
  return kDraws;
}

bool is_cpp_keyword(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if",       "for",      "while",   "switch",   "catch",  "return",
      "sizeof",   "alignof",  "alignas", "decltype", "typeid", "new",
      "delete",   "throw",    "static_assert",       "noexcept",
      "static_cast",          "dynamic_cast",        "const_cast",
      "reinterpret_cast",     "co_await", "co_yield", "co_return",
      "and",      "or",       "not",     "assert",   "defined",
      // Can precede "(" in `if constexpr (...)`, requires-clauses, and
      // explicit(bool) without being a call or a definition.
      "constexpr", "consteval", "constinit", "requires", "explicit"};
  return kKw.count(s) != 0;
}

}  // namespace dimmer::lint
